package nn

import (
	"fmt"
	"math"
)

// Batched inference driver and per-row loss helpers. The contract for the
// whole file is bit-for-bit agreement with the one-sample-at-a-time path:
// every helper replays the exact floating-point operation sequence of its
// per-sample counterpart (Softmax, SquaredLoss, Tensor.MaxIndex), so
// evaluating a batch produces the same bits as a per-sample loop and every
// result file stays byte-identical (batch_equiv_test.go pins this).

// ForwardBatch runs all layers on a batch of samples laid out as
// [B, sampleShape...] and returns the [B, classes] logits. All scratch is
// drawn from a, which the caller owns and must Reset between batches
// (ForwardBatch itself does not Reset: callers build the input batch from
// the same arena). The batched path is inference-only — no layer records
// backward state.
//
//lint:hotroot inference inner loop; all scratch comes from the arena
func (n *Network) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	out := in
	for _, l := range n.Layers {
		out = l.ForwardBatch(out, a)
	}
	return out
}

// ForwardBatchTrain runs all layers on a batch in training mode, recording
// per-layer backward state in the arena (valid until its next Reset).
// Dropout masks are pre-drawn sample-major across the network's dropout
// layers before any layer runs, so the RNG consumes draws in the per-sample
// loop's exact (sample, layer) order and batched training stays
// bit-identical to it even with several dropout layers.
func (n *Network) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	n.predrawDropoutMasks(in, a)
	out := in
	for _, l := range n.Layers {
		out = l.ForwardBatchTrain(out, a)
	}
	return out
}

// predrawDropoutMasks fills every active dropout layer's batch mask in
// sample-major order. The common no-dropout case is one type check per layer
// and no allocation.
func (n *Network) predrawDropoutMasks(in *Tensor, a *Arena) {
	var drops []*Dropout
	for _, l := range n.Layers {
		if d, ok := l.(*Dropout); ok && d.active() {
			drops = append(drops, d)
		}
	}
	if len(drops) == 0 {
		return
	}
	batch := in.Shape[0]
	shape := in.Shape[1:]
	for _, l := range n.Layers {
		if d, ok := l.(*Dropout); ok && d.active() {
			feat := 1
			for _, dim := range shape {
				feat *= dim
			}
			d.allocBatchMask(batch, feat, a)
		}
		shape = l.OutShape(shape)
	}
	for s := 0; s < batch; s++ {
		for _, d := range drops {
			d.drawMaskRow(s)
		}
	}
}

// BackwardBatch propagates a [B, classes] logits-gradient through all layers
// in reverse, accumulating each layer's parameter gradients across the whole
// batch exactly as a per-sample Backward loop would.
func (n *Network) BackwardBatch(gradLogits *Tensor, a *Arena) {
	g := gradLogits
	for i := len(n.Layers) - 1; i >= 0; i-- {
		g = n.Layers[i].BackwardBatch(g, a)
	}
}

// ArgmaxRow returns the index of the largest element of one logits row,
// replicating Tensor.MaxIndex (first maximum wins via strict >).
func ArgmaxRow(row []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range row {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// SoftmaxRowInto writes the softmax of one logits row into dst, replaying
// Softmax's operation order exactly (max-subtraction, exponentials summed
// in index order, then one divide per element). dst must have the row's
// length; aliasing dst with row is allowed.
func SoftmaxRowInto(dst, row []float64) {
	if len(dst) != len(row) {
		//lint:allow panicpolicy inference hot path: a length mismatch is a programmer error and mirrors the Forward shape guards
		panic(fmt.Sprintf("nn: softmax dst length %d does not match row length %d", len(dst), len(row)))
	}
	maxV := math.Inf(-1)
	for _, v := range row {
		if v > maxV {
			maxV = v
		}
	}
	sum := 0.0
	for i, v := range row {
		e := math.Exp(v - maxV)
		dst[i] = e
		sum += e
	}
	for i := range dst {
		dst[i] /= sum
	}
}

// CrossEntropyLossRow computes CrossEntropyLoss for one logits row, writing
// the logits gradient into gradRow (len == len(row)). The float op sequence
// replays the per-sample version exactly: softmax into the gradient buffer,
// -log(p[label]+eps), then the one-hot subtraction.
func CrossEntropyLossRow(row []float64, label int, gradRow []float64) float64 {
	SoftmaxRowInto(gradRow, row)
	const eps = 1e-12
	loss := -math.Log(gradRow[label] + eps)
	gradRow[label] -= 1
	return loss
}

// SquaredLossRowGrad computes SquaredLoss for one logits row, writing the
// logits gradient into gradRow and using scratch (len >= len(row)) for the
// softmax probabilities. The diff vector is staged in gradRow and then
// overwritten in ascending index order, replaying the per-sample op sequence
// term for term.
func SquaredLossRowGrad(row []float64, label int, gradRow, scratch []float64) float64 {
	p := scratch[:len(row)]
	SoftmaxRowInto(p, row)
	loss := 0.0
	for k, pk := range p {
		y := 0.0
		if k == label {
			y = 1
		}
		d := pk - y
		gradRow[k] = d
		loss += d * d
	}
	dot := 0.0
	for k := range p {
		dot += 2 * gradRow[k] * p[k]
	}
	for j := range p {
		gradRow[j] = p[j] * (2*gradRow[j] - dot)
	}
	return loss
}

// SquaredLossRow returns the value of SquaredLoss for one logits row using
// scratch for the softmax probabilities (len(scratch) >= len(row)); it
// replays the per-sample summation order term for term but skips the
// gradient, which the inference path never consumes.
func SquaredLossRow(row []float64, label int, scratch []float64) float64 {
	p := scratch[:len(row)]
	SoftmaxRowInto(p, row)
	loss := 0.0
	for k, pk := range p {
		y := 0.0
		if k == label {
			y = 1
		}
		d := pk - y
		loss += d * d
	}
	return loss
}
