// SSE2 and AVX2 element-parallel kernels. See simd_amd64.go for the
// bit-identity contract: lanes are independent output elements; per-element
// operation order matches the scalar references exactly (multiply then add —
// no FMA). The AVX2 bodies use only VEX-encoded instructions and end with
// VZEROUPPER, so they never pay SSE/AVX transition penalties.

#include "textflag.h"

// func axpySSE2(alpha float64, x, y []float64)
// y[i] += alpha * x[i] for i < len(y).
TEXT ·axpySSE2(SB), NOSPLIT, $0-56
	MOVSD alpha+0(FP), X0
	UNPCKLPD X0, X0 // broadcast alpha into both lanes
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX

loop8:
	CMPQ CX, $8
	JL   loop1
	MOVUPD 0(SI), X1
	MOVUPD 16(SI), X2
	MOVUPD 32(SI), X3
	MOVUPD 48(SI), X4
	MULPD X0, X1
	MULPD X0, X2
	MULPD X0, X3
	MULPD X0, X4
	MOVUPD 0(DI), X5
	MOVUPD 16(DI), X6
	MOVUPD 32(DI), X7
	MOVUPD 48(DI), X8
	ADDPD X1, X5
	ADDPD X2, X6
	ADDPD X3, X7
	ADDPD X4, X8
	MOVUPD X5, 0(DI)
	MOVUPD X6, 16(DI)
	MOVUPD X7, 32(DI)
	MOVUPD X8, 48(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  loop8

loop1:
	CMPQ CX, $0
	JE   done
	MOVSD (SI), X1
	MULSD X0, X1
	MOVSD (DI), X2
	ADDSD X1, X2
	MOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  loop1

done:
	RET

// func axpyAVX2(alpha float64, x, y []float64)
// Same per-element semantics as axpySSE2, four lanes per vector.
TEXT ·axpyAVX2(SB), NOSPLIT, $0-56
	VBROADCASTSD alpha+0(FP), Y0
	MOVQ x_base+8(FP), SI
	MOVQ y_base+32(FP), DI
	MOVQ y_len+40(FP), CX

vloop16:
	CMPQ CX, $16
	JL   vloop4
	VMULPD 0(SI), Y0, Y1
	VMULPD 32(SI), Y0, Y2
	VMULPD 64(SI), Y0, Y3
	VMULPD 96(SI), Y0, Y4
	VADDPD 0(DI), Y1, Y1
	VADDPD 32(DI), Y2, Y2
	VADDPD 64(DI), Y3, Y3
	VADDPD 96(DI), Y4, Y4
	VMOVUPD Y1, 0(DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $16, CX
	JMP  vloop16

vloop4:
	CMPQ CX, $4
	JL   vloop1
	VMULPD 0(SI), Y0, Y1
	VADDPD 0(DI), Y1, Y1
	VMOVUPD Y1, 0(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  vloop4

vloop1:
	CMPQ CX, $0
	JE   vdone
	VMOVSD (SI), X1
	VMULSD X0, X1, X1
	VMOVSD (DI), X2
	VADDSD X1, X2, X2
	VMOVSD X2, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  vloop1

vdone:
	VZEROUPPER
	RET

// func reluFwdSSE2(dst, src []float64)
// dst[i] = src[i] if src[i] > 0 else +0, for i < len(dst).
// MAXPD/MAXSD with the zero operand as SRC return +0 for NaN and for
// both-zero compares, matching the scalar `if v > 0` branch exactly.
TEXT ·reluFwdSSE2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	XORPS X0, X0

rloop8:
	CMPQ CX, $8
	JL   rloop1
	MOVUPD 0(SI), X1
	MOVUPD 16(SI), X2
	MOVUPD 32(SI), X3
	MOVUPD 48(SI), X4
	MAXPD X0, X1
	MAXPD X0, X2
	MAXPD X0, X3
	MAXPD X0, X4
	MOVUPD X1, 0(DI)
	MOVUPD X2, 16(DI)
	MOVUPD X3, 32(DI)
	MOVUPD X4, 48(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  rloop8

rloop1:
	CMPQ CX, $0
	JE   rdone
	MOVSD (SI), X1
	MAXSD X0, X1
	MOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  rloop1

rdone:
	RET

// func reluFwdAVX2(dst, src []float64)
// VMAXPD with the zero vector as the second source returns +0 for NaN and
// for both-zero compares — the scalar branch's outcomes, four lanes wide.
TEXT ·reluFwdAVX2(SB), NOSPLIT, $0-48
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ src_base+24(FP), SI
	VXORPS Y0, Y0, Y0

vrloop16:
	CMPQ CX, $16
	JL   vrloop4
	VMOVUPD 0(SI), Y1
	VMOVUPD 32(SI), Y2
	VMOVUPD 64(SI), Y3
	VMOVUPD 96(SI), Y4
	VMAXPD Y0, Y1, Y1
	VMAXPD Y0, Y2, Y2
	VMAXPD Y0, Y3, Y3
	VMAXPD Y0, Y4, Y4
	VMOVUPD Y1, 0(DI)
	VMOVUPD Y2, 32(DI)
	VMOVUPD Y3, 64(DI)
	VMOVUPD Y4, 96(DI)
	ADDQ $128, SI
	ADDQ $128, DI
	SUBQ $16, CX
	JMP  vrloop16

vrloop4:
	CMPQ CX, $4
	JL   vrloop1
	VMOVUPD 0(SI), Y1
	VMAXPD Y0, Y1, Y1
	VMOVUPD Y1, 0(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  vrloop4

vrloop1:
	CMPQ CX, $0
	JE   vrdone
	VMOVSD (SI), X1
	VMAXSD X0, X1, X1
	VMOVSD X1, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  vrloop1

vrdone:
	VZEROUPPER
	RET

// func reluBwdSSE2(dst, grad, in []float64)
// dst[i] = grad[i] if in[i] > 0 else +0, for i < len(dst).
// CMPPD predicate 1 (LT) builds the 0 < in mask (false for NaN), which is
// ANDed over grad: all-ones lanes pass grad bits verbatim, zero lanes
// produce +0 — the scalar branch's two outcomes.
TEXT ·reluBwdSSE2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ grad_base+24(FP), SI
	MOVQ in_base+48(FP), BX
	XORPS X0, X0

bloop2:
	CMPQ CX, $2
	JL   bloop1
	MOVUPD (BX), X1
	MOVAPD X0, X2
	CMPPD  X1, X2, $1
	MOVUPD (SI), X3
	ANDPD  X2, X3
	MOVUPD X3, (DI)
	ADDQ $16, SI
	ADDQ $16, DI
	ADDQ $16, BX
	SUBQ $2, CX
	JMP  bloop2

bloop1:
	CMPQ CX, $0
	JE   bdone
	MOVSD   (BX), X1
	UCOMISD X0, X1
	JA      bcopy
	MOVSD X0, (DI)
	JMP   bnext

bcopy:
	MOVSD (SI), X3
	MOVSD X3, (DI)

bnext:
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, BX
	DECQ CX
	JMP  bloop1

bdone:
	RET

// func reluBwdAVX2(dst, grad, in []float64)
// VCMPPD predicate 1 builds the 0 < in mask (false for NaN) four lanes at a
// time; VANDPD passes grad bits verbatim where true, +0 where false.
TEXT ·reluBwdAVX2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), CX
	MOVQ grad_base+24(FP), SI
	MOVQ in_base+48(FP), BX
	VXORPS Y0, Y0, Y0

vbloop8:
	CMPQ CX, $8
	JL   vbloop4
	VMOVUPD 0(BX), Y1
	VMOVUPD 32(BX), Y2
	VCMPPD  $1, Y1, Y0, Y1
	VCMPPD  $1, Y2, Y0, Y2
	VANDPD  0(SI), Y1, Y1
	VANDPD  32(SI), Y2, Y2
	VMOVUPD Y1, 0(DI)
	VMOVUPD Y2, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	ADDQ $64, BX
	SUBQ $8, CX
	JMP  vbloop8

vbloop4:
	CMPQ CX, $4
	JL   vbloop1
	VMOVUPD 0(BX), Y1
	VCMPPD  $1, Y1, Y0, Y1
	VANDPD  0(SI), Y1, Y1
	VMOVUPD Y1, 0(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	ADDQ $32, BX
	SUBQ $4, CX
	JMP  vbloop4

vbloop1:
	CMPQ CX, $0
	JE   vbdone
	VMOVSD  (BX), X1
	VUCOMISD X0, X1
	JA      vbcopy
	VMOVSD X0, (DI)
	JMP    vbnext

vbcopy:
	VMOVSD (SI), X3
	VMOVSD X3, (DI)

vbnext:
	ADDQ $8, SI
	ADDQ $8, DI
	ADDQ $8, BX
	DECQ CX
	JMP  vbloop1

vbdone:
	VZEROUPPER
	RET

// func nnDot8SSE2(out, init, a, bt []float64, n int)
// Eight adjacent output columns accumulate in X4-X7 across the whole K
// loop; each k step broadcasts a[c] and does MULPD+ADDPD per lane pair —
// per column that is exactly init + a[0]*bt[0][l] + a[1]*bt[1][l] + ... in
// ascending c order, the reference dot sequence.
TEXT ·nnDot8SSE2(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ init_base+24(FP), DX
	MOVQ a_base+48(FP), SI
	MOVQ a_len+56(FP), CX
	MOVQ bt_base+72(FP), BX
	MOVQ n+96(FP), R8
	SHLQ $3, R8 // row stride in bytes
	MOVUPD 0(DX), X4
	MOVUPD 16(DX), X5
	MOVUPD 32(DX), X6
	MOVUPD 48(DX), X7

dloop:
	CMPQ CX, $0
	JE   ddone
	MOVSD (SI), X0
	UNPCKLPD X0, X0 // broadcast a[c]
	MOVUPD 0(BX), X1
	MOVUPD 16(BX), X2
	MULPD X0, X1
	MULPD X0, X2
	ADDPD X1, X4
	ADDPD X2, X5
	MOVUPD 32(BX), X1
	MOVUPD 48(BX), X2
	MULPD X0, X1
	MULPD X0, X2
	ADDPD X1, X6
	ADDPD X2, X7
	ADDQ $8, SI
	ADDQ R8, BX
	DECQ CX
	JMP  dloop

ddone:
	MOVUPD X4, 0(DI)
	MOVUPD X5, 16(DI)
	MOVUPD X6, 32(DI)
	MOVUPD X7, 48(DI)
	RET

// func nnDot16AVX2(out, init, a, bt []float64, n int)
// Sixteen adjacent output columns accumulate in Y4-Y7 across the whole K
// loop — the same per-column init + a[c]*bt[c][l] sequence as nnDot8SSE2,
// four lanes per register. bt must have at least (len(a)-1)*n+16 elements;
// out and init at least 16.
TEXT ·nnDot16AVX2(SB), NOSPLIT, $0-104
	MOVQ out_base+0(FP), DI
	MOVQ init_base+24(FP), DX
	MOVQ a_base+48(FP), SI
	MOVQ a_len+56(FP), CX
	MOVQ bt_base+72(FP), BX
	MOVQ n+96(FP), R8
	SHLQ $3, R8 // row stride in bytes
	VMOVUPD 0(DX), Y4
	VMOVUPD 32(DX), Y5
	VMOVUPD 64(DX), Y6
	VMOVUPD 96(DX), Y7

vdloop:
	CMPQ CX, $0
	JE   vddone
	VBROADCASTSD (SI), Y0
	VMULPD 0(BX), Y0, Y1
	VMULPD 32(BX), Y0, Y2
	VADDPD Y1, Y4, Y4
	VADDPD Y2, Y5, Y5
	VMULPD 64(BX), Y0, Y1
	VMULPD 96(BX), Y0, Y2
	VADDPD Y1, Y6, Y6
	VADDPD Y2, Y7, Y7
	ADDQ $8, SI
	ADDQ R8, BX
	DECQ CX
	JMP  vdloop

vddone:
	VMOVUPD Y4, 0(DI)
	VMOVUPD Y5, 32(DI)
	VMOVUPD Y6, 64(DI)
	VMOVUPD Y7, 96(DI)
	VZEROUPPER
	RET

// func stepSSE2(lr, scale float64, g, p []float64)
// p[i] -= lr*g[i]/scale: multiply, divide, subtract — the scalar update's
// exact operation sequence per element (division order is fixed; the
// multiply's operand order only matters for NaN payloads, see the contract).
TEXT ·stepSSE2(SB), NOSPLIT, $0-64
	MOVSD lr+0(FP), X0
	UNPCKLPD X0, X0
	MOVSD scale+8(FP), X1
	UNPCKLPD X1, X1
	MOVQ g_base+16(FP), SI
	MOVQ p_base+40(FP), DI
	MOVQ p_len+48(FP), CX

ploop4:
	CMPQ CX, $4
	JL   ploop1
	MOVUPD 0(SI), X2
	MOVUPD 16(SI), X3
	MULPD X0, X2
	MULPD X0, X3
	DIVPD X1, X2
	DIVPD X1, X3
	MOVUPD 0(DI), X4
	MOVUPD 16(DI), X5
	SUBPD X2, X4
	SUBPD X3, X5
	MOVUPD X4, 0(DI)
	MOVUPD X5, 16(DI)
	ADDQ $32, SI
	ADDQ $32, DI
	SUBQ $4, CX
	JMP  ploop4

ploop1:
	CMPQ CX, $0
	JE   pdone
	MOVSD (SI), X2
	MULSD X0, X2
	DIVSD X1, X2
	MOVSD (DI), X4
	SUBSD X2, X4
	MOVSD X4, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  ploop1

pdone:
	RET

// func stepAVX2(lr, scale float64, g, p []float64)
// Same per-element multiply/divide/subtract sequence, four lanes wide.
TEXT ·stepAVX2(SB), NOSPLIT, $0-64
	VBROADCASTSD lr+0(FP), Y0
	VBROADCASTSD scale+8(FP), Y1
	MOVQ g_base+16(FP), SI
	MOVQ p_base+40(FP), DI
	MOVQ p_len+48(FP), CX

vploop8:
	CMPQ CX, $8
	JL   vploop1
	VMULPD 0(SI), Y0, Y2
	VMULPD 32(SI), Y0, Y3
	VDIVPD Y1, Y2, Y2
	VDIVPD Y1, Y3, Y3
	VMOVUPD 0(DI), Y4
	VMOVUPD 32(DI), Y5
	VSUBPD Y2, Y4, Y4
	VSUBPD Y3, Y5, Y5
	VMOVUPD Y4, 0(DI)
	VMOVUPD Y5, 32(DI)
	ADDQ $64, SI
	ADDQ $64, DI
	SUBQ $8, CX
	JMP  vploop8

vploop1:
	CMPQ CX, $0
	JE   vpdone
	VMOVSD (SI), X2
	VMULSD X2, X0, X2
	VDIVSD X1, X2, X2
	VMOVSD (DI), X4
	VSUBSD X2, X4, X4
	VMOVSD X4, (DI)
	ADDQ $8, SI
	ADDQ $8, DI
	DECQ CX
	JMP  vploop1

vpdone:
	VZEROUPPER
	RET

// func nnDot4x8AVX2(out []float64, on int, init, a []float64, k int, bt []float64, ld int)
// A 4x8 output tile accumulates in Y4-Y11 across the whole K loop: four
// rows of a (stride k) against the same eight bt columns (row stride ld),
// so each bt element is loaded once per four output rows instead of once
// per row. Per element the sequence is still init + a[c]*bt[c][l] with c
// strictly ascending — rows are just more independent lanes. out rows are
// written at stride on; init supplies the 4x8 starting values row-major.
TEXT ·nnDot4x8AVX2(SB), NOSPLIT, $0-120
	MOVQ out_base+0(FP), DI
	MOVQ on+24(FP), DX
	SHLQ $3, DX // out row stride in bytes
	MOVQ init_base+32(FP), AX
	MOVQ a_base+56(FP), R9
	MOVQ k+80(FP), CX
	MOVQ bt_base+88(FP), BX
	MOVQ ld+112(FP), R8
	SHLQ $3, R8 // bt row stride in bytes
	MOVQ CX, R10
	SHLQ $3, R10 // a row stride in bytes
	LEAQ (R9)(R10*1), R11
	LEAQ (R11)(R10*1), R12
	LEAQ (R12)(R10*1), R13
	VMOVUPD 0(AX), Y4
	VMOVUPD 32(AX), Y5
	VMOVUPD 64(AX), Y6
	VMOVUPD 96(AX), Y7
	VMOVUPD 128(AX), Y8
	VMOVUPD 160(AX), Y9
	VMOVUPD 192(AX), Y10
	VMOVUPD 224(AX), Y11

qloop:
	CMPQ CX, $0
	JE   qdone
	VMOVUPD 0(BX), Y0
	VMOVUPD 32(BX), Y1
	VBROADCASTSD (R9), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y4, Y4
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y5, Y5
	VBROADCASTSD (R11), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y6, Y6
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y7, Y7
	VBROADCASTSD (R12), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y8, Y8
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y9, Y9
	VBROADCASTSD (R13), Y2
	VMULPD Y0, Y2, Y3
	VADDPD Y3, Y10, Y10
	VMULPD Y1, Y2, Y3
	VADDPD Y3, Y11, Y11
	ADDQ $8, R9
	ADDQ $8, R11
	ADDQ $8, R12
	ADDQ $8, R13
	ADDQ R8, BX
	DECQ CX
	JMP  qloop

qdone:
	VMOVUPD Y4, 0(DI)
	VMOVUPD Y5, 32(DI)
	ADDQ DX, DI
	VMOVUPD Y6, 0(DI)
	VMOVUPD Y7, 32(DI)
	ADDQ DX, DI
	VMOVUPD Y8, 0(DI)
	VMOVUPD Y9, 32(DI)
	ADDQ DX, DI
	VMOVUPD Y10, 0(DI)
	VMOVUPD Y11, 32(DI)
	VZEROUPPER
	RET

// func pool2x2SSE2(dst, row0, row1 []float64)
// dst[x] = max of the 2x2 window (row0[2x], row0[2x+1], row1[2x], row1[2x+1])
// in the scalar loop's candidate order: each MAXPD/MAXSD has the new
// candidate as its destination operand, so the running best (the source) is
// returned on ties and NaN candidates — exactly the scalar strict-> update.
// Two windows per vector pass: UNPCKLPD/UNPCKHPD split even/odd lanes.
TEXT ·pool2x2SSE2(SB), NOSPLIT, $0-72
	MOVQ dst_base+0(FP), DI
	MOVQ dst_len+8(FP), BX
	MOVQ row0_base+24(FP), SI
	MOVQ row1_base+48(FP), DX
	XORQ AX, AX

pair:
	LEAQ 2(AX), CX
	CMPQ CX, BX
	JGT  tail
	MOVUPD   (SI), X0   // [a0 b0]
	MOVUPD   16(SI), X1 // [a1 b1]
	MOVAPD   X0, X2
	UNPCKLPD X1, X0     // X0 = [a0 a1] = running best
	UNPCKHPD X1, X2     // X2 = [b0 b1]
	MAXPD    X0, X2     // X2 = (X2 > X0) ? X2 : X0
	MOVUPD   (DX), X3   // [c0 d0]
	MOVUPD   16(DX), X4 // [c1 d1]
	MOVAPD   X3, X5
	UNPCKLPD X4, X3     // X3 = [c0 c1]
	UNPCKHPD X4, X5     // X5 = [d0 d1]
	MAXPD    X2, X3     // X3 = (X3 > X2) ? X3 : X2
	MAXPD    X3, X5     // X5 = (X5 > X3) ? X5 : X3
	MOVUPD   X5, (DI)
	ADDQ     $32, SI
	ADDQ     $32, DX
	ADDQ     $16, DI
	ADDQ     $2, AX
	JMP      pair

tail:
	CMPQ AX, BX
	JGE  done
	MOVSD (SI), X0
	MOVSD 8(SI), X1
	MAXSD X0, X1
	MOVSD (DX), X2
	MAXSD X1, X2
	MOVSD 8(DX), X3
	MAXSD X2, X3
	MOVSD X3, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DX
	ADDQ  $8, DI
	INCQ  AX
	JMP   tail

done:
	RET

// func conv3x3BwdSSE2(gv float64, wr, cr, gw, gi []float64, w, hw, inC int)
// One surviving gradient element's 3x3 backward scatter, all input channels:
// per channel ic, gw[ic*9+j] += gv*cr[ic*9+j] for j in [0,9) and
// gi[ic*hw + r*w + j] += gv*wr[ic*9 + r*3 + j] for r,j in [0,3). Every
// target element receives exactly one mul-then-add (no FMA), identical to
// the scalar loops; pairing touches only distinct elements. gi is pre-sliced
// at the scatter origin; w and hw are element strides between gi rows and
// channels.
TEXT ·conv3x3BwdSSE2(SB), NOSPLIT, $0-128
	MOVSD    gv+0(FP), X0
	UNPCKLPD X0, X0
	MOVQ     wr_base+8(FP), SI
	MOVQ     cr_base+32(FP), BX
	MOVQ     gw_base+56(FP), DX
	MOVQ     gi_base+80(FP), DI
	MOVQ     w+104(FP), R8
	SHLQ     $3, R8
	MOVQ     hw+112(FP), R9
	SHLQ     $3, R9
	MOVQ     inC+120(FP), CX

chan3:
	// gw[0:9] += gv * cr[0:9], four pairs then the ninth element.
	MOVUPD (BX), X1
	MULPD  X0, X1
	MOVUPD (DX), X2
	ADDPD  X1, X2
	MOVUPD X2, (DX)
	MOVUPD 16(BX), X1
	MULPD  X0, X1
	MOVUPD 16(DX), X2
	ADDPD  X1, X2
	MOVUPD X2, 16(DX)
	MOVUPD 32(BX), X1
	MULPD  X0, X1
	MOVUPD 32(DX), X2
	ADDPD  X1, X2
	MOVUPD X2, 32(DX)
	MOVUPD 48(BX), X1
	MULPD  X0, X1
	MOVUPD 48(DX), X2
	ADDPD  X1, X2
	MOVUPD X2, 48(DX)
	MOVSD  64(BX), X1
	MULSD  X0, X1
	MOVSD  64(DX), X2
	ADDSD  X1, X2
	MOVSD  X2, 64(DX)

	// gi row 0 += gv * wr[0:3]
	MOVUPD (SI), X1
	MULPD  X0, X1
	MOVUPD (DI), X2
	ADDPD  X1, X2
	MOVUPD X2, (DI)
	MOVSD  16(SI), X1
	MULSD  X0, X1
	MOVSD  16(DI), X2
	ADDSD  X1, X2
	MOVSD  X2, 16(DI)

	// gi row 1 += gv * wr[3:6]
	MOVUPD 24(SI), X1
	MULPD  X0, X1
	MOVUPD (DI)(R8*1), X2
	ADDPD  X1, X2
	MOVUPD X2, (DI)(R8*1)
	MOVSD  40(SI), X1
	MULSD  X0, X1
	MOVSD  16(DI)(R8*1), X2
	ADDSD  X1, X2
	MOVSD  X2, 16(DI)(R8*1)

	// gi row 2 += gv * wr[6:9]
	MOVUPD 48(SI), X1
	MULPD  X0, X1
	MOVUPD (DI)(R8*2), X2
	ADDPD  X1, X2
	MOVUPD X2, (DI)(R8*2)
	MOVSD  64(SI), X1
	MULSD  X0, X1
	MOVSD  16(DI)(R8*2), X2
	ADDSD  X1, X2
	MOVSD  X2, 16(DI)(R8*2)

	ADDQ $72, SI
	ADDQ $72, BX
	ADDQ $72, DX
	ADDQ R9, DI
	DECQ CX
	JNZ  chan3
	RET

// func transpose2x2SSE2(dst, src []float64, rows, cols int)
// dst[c*rows+r] = src[r*cols+c] over the even region r < rows&^1,
// c < cols&^1 (callers finish odd tails). Pure data movement — bit-exact by
// construction. Column pairs are outer and row pairs inner, so the stores
// stream contiguously down two dst rows while the strided loads stay on two
// prefetchable src streams.
TEXT ·transpose2x2SSE2(SB), NOSPLIT, $0-64
	MOVQ dst_base+0(FP), DI
	MOVQ src_base+24(FP), CX
	MOVQ rows+48(FP), R8
	MOVQ cols+56(FP), BX
	MOVQ R8, R9
	SHLQ $3, R9  // rows*8
	MOVQ BX, R11
	SHLQ $3, R11 // cols*8
	XORQ R12, R12

cpair:
	LEAQ 2(R12), AX
	CMPQ AX, BX
	JGT  tdone
	LEAQ (CX)(R12*8), SI  // src + c*8
	MOVQ DI, DX           // dst column c
	LEAQ (DI)(R9*1), R10  // dst column c+1
	XORQ R13, R13

rpair:
	LEAQ 2(R13), AX
	CMPQ AX, R8
	JGT  rdone
	MOVUPD   (SI), X0          // [s(r,c)   s(r,c+1)]
	MOVUPD   (SI)(R11*1), X1   // [s(r+1,c) s(r+1,c+1)]
	MOVAPD   X0, X2
	UNPCKLPD X1, X0            // [s(r,c)   s(r+1,c)]
	MOVUPD   X0, (DX)
	UNPCKHPD X1, X2            // [s(r,c+1) s(r+1,c+1)]
	MOVUPD   X2, (R10)
	LEAQ     (SI)(R11*2), SI
	ADDQ     $16, DX
	ADDQ     $16, R10
	ADDQ     $2, R13
	JMP      rpair

rdone:
	LEAQ (DI)(R9*2), DI
	ADDQ $2, R12
	JMP  cpair

tdone:
	RET
