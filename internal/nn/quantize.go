package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Int8 weight quantization: each parameter tensor is stored as int8 values
// with one float32 scale (symmetric, per-tensor), quartering the checkpoint
// size relative to the float32 wire format. This backs the paper's
// future-work direction of quantization-aware energy control: smaller
// checkpoints mean cheaper model downloads (the paper's F_{i,n} = vartheta
// * W_n) at a measurable accuracy cost.
//
// Layout (little endian):
//
//	magic   uint32 'C','E','Q','8'
//	version uint32
//	count   uint32 number of tensors
//	repeat count times:
//	  scale float32
//	  len   uint32
//	  data  len * int8
const quantMagic = 0x4345_5138 // "CEQ8"

// WriteQuantized serializes the network's parameters with symmetric int8
// quantization.
func WriteQuantized(w io.Writer, net *Network) error {
	bw := bufio.NewWriter(w)
	var params []*Tensor
	for _, l := range net.Layers {
		params = append(params, l.Params()...)
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(quantMagic)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(wireVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		maxAbs := 0.0
		for _, v := range p.Data {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		if err := binary.Write(bw, binary.LittleEndian, float32(scale)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, uint32(p.Len())); err != nil {
			return err
		}
		for _, v := range p.Data {
			q := math.Round(v / scale)
			if q > 127 {
				q = 127
			}
			if q < -127 {
				q = -127
			}
			if err := bw.WriteByte(byte(int8(q))); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadQuantized loads a quantized checkpoint into an identically shaped
// network, dequantizing to float64.
func ReadQuantized(r io.Reader, net *Network) error {
	br := bufio.NewReader(r)
	var magic, version, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return fmt.Errorf("nn: read magic: %w", err)
	}
	if magic != quantMagic {
		return fmt.Errorf("nn: bad quantized magic 0x%08x", magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return fmt.Errorf("nn: read version: %w", err)
	}
	if version != wireVersion {
		return fmt.Errorf("nn: unsupported version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return fmt.Errorf("nn: read count: %w", err)
	}
	if count > maxWireCnt {
		return fmt.Errorf("nn: implausible tensor count %d", count)
	}
	var params []*Tensor
	for _, l := range net.Layers {
		params = append(params, l.Params()...)
	}
	if int(count) != len(params) {
		return fmt.Errorf("nn: payload has %d tensors, network %q has %d", count, net.Name, len(params))
	}
	for i, p := range params {
		var scale float32
		if err := binary.Read(br, binary.LittleEndian, &scale); err != nil {
			return fmt.Errorf("nn: read tensor %d scale: %w", i, err)
		}
		if scale <= 0 || math.IsNaN(float64(scale)) || math.IsInf(float64(scale), 0) {
			return fmt.Errorf("nn: invalid scale %v in tensor %d", scale, i)
		}
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return fmt.Errorf("nn: read tensor %d length: %w", i, err)
		}
		if int(n) != p.Len() {
			return fmt.Errorf("nn: tensor %d has %d values, network expects %d", i, n, p.Len())
		}
		for j := 0; j < int(n); j++ {
			b, err := br.ReadByte()
			if err != nil {
				return fmt.Errorf("nn: read tensor %d value %d: %w", i, j, err)
			}
			p.Data[j] = float64(int8(b)) * float64(scale)
		}
	}
	return nil
}

// QuantizedWireSize returns the quantized checkpoint size in bytes.
func QuantizedWireSize(net *Network) int64 {
	size := int64(12) // magic + version + count
	for _, l := range net.Layers {
		for _, p := range l.Params() {
			size += 4 + 4 + int64(p.Len()) // scale + len + int8 data
		}
	}
	return size
}

// QuantizeInPlace replaces the network's weights with their int8
// dequantized values, measuring the quality impact of serving the
// quantized model directly. It is QuantizeWeights followed by ApplyTo —
// one shared quantization rule (qweights.go), so the fake-quant oracle and
// the stored int8 representation cannot drift apart.
func QuantizeInPlace(net *Network) {
	if err := QuantizeWeights(net).ApplyTo(net); err != nil {
		//lint:allow panicpolicy unreachable: the weights were captured from net itself, so shapes always align
		panic(err)
	}
}
