//go:build amd64

package nn

// Runtime CPU feature detection for the wider SIMD kernels. AVX2 is not part
// of the amd64 baseline, so the AVX2 paths dispatch behind this flag; the
// SSE2 paths need no check. Dispatch cannot affect results: every kernel
// variant performs the identical per-element IEEE operations in the identical
// order (see simd_amd64.go), so a run on a pre-AVX2 host is bit-for-bit the
// same as a run here — only slower.

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32) //lint:allow simdcover CPU feature probe, not a data kernel; there is no scalar semantics to mirror

func xgetbv0() (eax, edx uint32) //lint:allow simdcover CPU feature probe, not a data kernel; there is no scalar semantics to mirror

var hasAVX2 = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	if _, _, c, _ := cpuid(1, 0); c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state (XCR0 bits 1 and 2).
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}()

// hasAVX512 gates the plain AVX-512 integer kernels (requantizeRowAVX512's
// zmm int64 arithmetic). Beyond the AVX2 preconditions it needs AVX512F +
// AVX512VL (leaf 7 EBX bits 16 and 31) and an OS that saves the opmask/ZMM
// state (XCR0 bits 5-7).
var hasAVX512 = func() bool {
	if !hasAVX2 {
		return false
	}
	const xmmYmm, opmaskZmm = 0x6, 0xe0
	if eax, _ := xgetbv0(); eax&(xmmYmm|opmaskZmm) != xmmYmm|opmaskZmm {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	const avx512f, avx512vl = 1 << 16, 1 << 31
	return b&avx512f != 0 && b&avx512vl != 0
}()

// hasVNNI gates the AVX-512 VNNI tier of the integer GEMM kernels (VPDPBUSD
// over zmm plus the AVX512VL xmm remainder forms): hasAVX512 plus the
// AVX512VNNI bit (leaf 7 ECX bit 11).
var hasVNNI = func() bool {
	if !hasAVX512 {
		return false
	}
	_, _, c, _ := cpuid(7, 0)
	return c&(1<<11) != 0
}()
