//go:build amd64

package nn

// Runtime CPU feature detection for the wider SIMD kernels. AVX2 is not part
// of the amd64 baseline, so the AVX2 paths dispatch behind this flag; the
// SSE2 paths need no check. Dispatch cannot affect results: every kernel
// variant performs the identical per-element IEEE operations in the identical
// order (see simd_amd64.go), so a run on a pre-AVX2 host is bit-for-bit the
// same as a run here — only slower.

func cpuid(leaf, sub uint32) (eax, ebx, ecx, edx uint32) //lint:allow simdcover CPU feature probe, not a data kernel; there is no scalar semantics to mirror

func xgetbv0() (eax, edx uint32) //lint:allow simdcover CPU feature probe, not a data kernel; there is no scalar semantics to mirror

var hasAVX2 = func() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	const osxsave, avx = 1 << 27, 1 << 28
	if _, _, c, _ := cpuid(1, 0); c&osxsave == 0 || c&avx == 0 {
		return false
	}
	// The OS must save/restore XMM and YMM state (XCR0 bits 1 and 2).
	if eax, _ := xgetbv0(); eax&0x6 != 0x6 {
		return false
	}
	_, b, _, _ := cpuid(7, 0)
	return b&(1<<5) != 0
}()
