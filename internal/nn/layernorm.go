package nn

import (
	"fmt"
	"math"
)

// LayerNorm normalizes a sample's activations to zero mean and unit
// variance across all features, then applies a learnable per-feature gain
// and bias (Ba, Kiros & Hinton 2016). Unlike batch normalization it needs
// no batch statistics, so it fits this substrate's one-sample-at-a-time
// execution exactly.
type LayerNorm struct {
	dim int
	eps float64

	gain, bias   *Tensor
	gGain, gBias *Tensor

	lastNorm *Tensor // normalized activations x-hat of the last forward
	lastStd  float64
	// normBatch/stdBatch record x-hat and std per sample for BackwardBatch;
	// both point into the training arena (valid until its Reset).
	normBatch []float64
	stdBatch  []float64
}

var _ Layer = (*LayerNorm)(nil)

// NewLayerNorm creates a layer-norm over dim features.
func NewLayerNorm(dim int) (*LayerNorm, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("nn: layer norm needs positive dim, got %d", dim)
	}
	l := &LayerNorm{
		dim:   dim,
		eps:   1e-5,
		gain:  NewTensor(dim),
		bias:  NewTensor(dim),
		gGain: NewTensor(dim),
		gBias: NewTensor(dim),
	}
	for i := range l.gain.Data {
		l.gain.Data[i] = 1
	}
	return l, nil
}

// Forward implements Layer.
func (l *LayerNorm) Forward(in *Tensor) *Tensor {
	if in.Len() != l.dim {
		//lint:allow panicpolicy Layer.Forward hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: LayerNorm expected %d features, got %d", l.dim, in.Len()))
	}
	mean := 0.0
	for _, v := range in.Data {
		mean += v
	}
	mean /= float64(l.dim)
	varSum := 0.0
	for _, v := range in.Data {
		d := v - mean
		varSum += d * d
	}
	std := math.Sqrt(varSum/float64(l.dim) + l.eps)
	l.lastStd = std
	l.lastNorm = NewTensor(in.Shape...)
	out := NewTensor(in.Shape...)
	for i, v := range in.Data {
		nx := (v - mean) / std
		l.lastNorm.Data[i] = nx
		out.Data[i] = l.gain.Data[i]*nx + l.bias.Data[i]
	}
	return out
}

// ForwardBatch implements Layer: each row is normalized independently with
// the exact per-sample op order of Forward (mean, variance, sqrt,
// gain*xhat+bias), and no training state is recorded.
func (l *LayerNorm) ForwardBatch(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	if in.Len() != batch*l.dim {
		//lint:allow panicpolicy Layer.ForwardBatch hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: LayerNorm batch expected %d features per sample, got %d", l.dim, in.Len()/batch))
	}
	out := a.Tensor(batch, l.dim)
	for s := 0; s < batch; s++ {
		row := in.Data[s*l.dim : (s+1)*l.dim]
		dst := out.Data[s*l.dim : (s+1)*l.dim]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.dim)
		varSum := 0.0
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum/float64(l.dim) + l.eps)
		for i, v := range row {
			nx := (v - mean) / std
			dst[i] = l.gain.Data[i]*nx + l.bias.Data[i]
		}
	}
	return out
}

// ForwardBatchTrain implements Layer: ForwardBatch's per-row normalization
// plus recording each row's x-hat and std for BackwardBatch.
func (l *LayerNorm) ForwardBatchTrain(in *Tensor, a *Arena) *Tensor {
	batch := in.Shape[0]
	if in.Len() != batch*l.dim {
		//lint:allow panicpolicy Layer.ForwardBatchTrain hot path: a shape mismatch is a programmer error and the interface has no error channel
		panic(fmt.Sprintf("nn: LayerNorm batch expected %d features per sample, got %d", l.dim, in.Len()/batch))
	}
	out := a.Tensor(batch, l.dim)
	l.normBatch = a.Floats(batch * l.dim)
	l.stdBatch = a.Floats(batch)
	for s := 0; s < batch; s++ {
		row := in.Data[s*l.dim : (s+1)*l.dim]
		dst := out.Data[s*l.dim : (s+1)*l.dim]
		nrm := l.normBatch[s*l.dim : (s+1)*l.dim]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(l.dim)
		varSum := 0.0
		for _, v := range row {
			d := v - mean
			varSum += d * d
		}
		std := math.Sqrt(varSum/float64(l.dim) + l.eps)
		l.stdBatch[s] = std
		for i, v := range row {
			nx := (v - mean) / std
			nrm[i] = nx
			dst[i] = l.gain.Data[i]*nx + l.bias.Data[i]
		}
	}
	return out
}

// BackwardBatch implements Layer: Backward's per-sample op sequence replayed
// row by row in ascending sample order (gGain/gBias accumulate identically).
func (l *LayerNorm) BackwardBatch(gradOut *Tensor, a *Arena) *Tensor {
	batch := gradOut.Shape[0]
	gradIn := a.Tensor(batch, l.dim)
	dxhat := a.Floats(l.dim)
	n := float64(l.dim)
	for s := 0; s < batch; s++ {
		g := gradOut.Data[s*l.dim : (s+1)*l.dim]
		nrm := l.normBatch[s*l.dim : (s+1)*l.dim]
		gi := gradIn.Data[s*l.dim : (s+1)*l.dim]
		var sumDxhat, sumDxhatXhat float64
		for i := 0; i < l.dim; i++ {
			gv := g[i]
			l.gGain.Data[i] += gv * nrm[i]
			l.gBias.Data[i] += gv
			dxhat[i] = gv * l.gain.Data[i]
			sumDxhat += dxhat[i]
			sumDxhatXhat += dxhat[i] * nrm[i]
		}
		std := l.stdBatch[s]
		for i := 0; i < l.dim; i++ {
			gi[i] = (dxhat[i] - sumDxhat/n - nrm[i]*sumDxhatXhat/n) / std
		}
	}
	return gradIn
}

// Backward implements Layer.
func (l *LayerNorm) Backward(gradOut *Tensor) *Tensor {
	n := float64(l.dim)
	// Gradients w.r.t. gain/bias.
	dxhat := make([]float64, l.dim)
	var sumDxhat, sumDxhatXhat float64
	for i := 0; i < l.dim; i++ {
		g := gradOut.Data[i]
		l.gGain.Data[i] += g * l.lastNorm.Data[i]
		l.gBias.Data[i] += g
		dxhat[i] = g * l.gain.Data[i]
		sumDxhat += dxhat[i]
		sumDxhatXhat += dxhat[i] * l.lastNorm.Data[i]
	}
	// d in_i = (1/std) * (dxhat_i - mean(dxhat) - xhat_i * mean(dxhat*xhat))
	gradIn := NewTensor(gradOut.Shape...)
	for i := 0; i < l.dim; i++ {
		gradIn.Data[i] = (dxhat[i] - sumDxhat/n - l.lastNorm.Data[i]*sumDxhatXhat/n) / l.lastStd
	}
	return gradIn
}

// Params implements Layer.
func (l *LayerNorm) Params() []*Tensor { return []*Tensor{l.gain, l.bias} }

// Grads implements Layer.
func (l *LayerNorm) Grads() []*Tensor { return []*Tensor{l.gGain, l.gBias} }

// OutShape implements Layer.
func (l *LayerNorm) OutShape(in []int) []int { return in }

// FLOPs implements Layer.
func (l *LayerNorm) FLOPs([]int) int64 { return int64(4 * l.dim) }
