package nn

import (
	"math/rand"
	"testing"
)

func TestOptimizerConstructorErrors(t *testing.T) {
	if _, err := NewSGD(0); err == nil {
		t.Error("SGD: expected error for zero lr")
	}
	if _, err := NewMomentum(0, 0.9); err == nil {
		t.Error("Momentum: expected error for zero lr")
	}
	if _, err := NewMomentum(0.1, 1); err == nil {
		t.Error("Momentum: expected error for beta = 1")
	}
	if _, err := NewMomentum(0.1, -0.1); err == nil {
		t.Error("Momentum: expected error for beta < 0")
	}
	if _, err := NewAdam(0); err == nil {
		t.Error("Adam: expected error for zero lr")
	}
}

// separableData builds a small linearly separable binary problem.
func separableData(rng *rand.Rand, n int) []Sample {
	samples := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		label := i % 2
		off := float64(label*2 - 1)
		x, err := FromSlice([]float64{off + rng.NormFloat64()*0.3, off + rng.NormFloat64()*0.3}, 2)
		if err != nil {
			panic(err)
		}
		samples = append(samples, Sample{X: x, Label: label})
	}
	return samples
}

func trainWithOpt(t *testing.T, opt Optimizer, epochs int) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	net := NewNetwork("opt", []int{2},
		NewDense(2, 8, rng), NewReLU(), NewDense(8, 2, rng))
	samples := separableData(rng, 80)
	if _, err := TrainWith(net, samples, TrainConfig{Epochs: epochs, BatchSize: 8}, opt, rng); err != nil {
		t.Fatalf("TrainWith: %v", err)
	}
	acc, _ := Evaluate(net, samples)
	return acc
}

func TestAllOptimizersConverge(t *testing.T) {
	sgd, err := NewSGD(0.3)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := NewMomentum(0.1, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	adam, err := NewAdam(0.01)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", sgd}, {"momentum", mom}, {"adam", adam},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if acc := trainWithOpt(t, tc.opt, 30); acc < 0.95 {
				t.Errorf("accuracy = %v, want >= 0.95", acc)
			}
		})
	}
}

func TestMomentumFasterThanSGDAtSameLR(t *testing.T) {
	// With few epochs and the same base rate, momentum should reach at
	// least SGD's accuracy (heavy-ball accelerates on this smooth problem).
	lr := 0.05
	sgd, err := NewSGD(lr)
	if err != nil {
		t.Fatal(err)
	}
	mom, err := NewMomentum(lr, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	accSGD := trainWithOpt(t, sgd, 3)
	accMom := trainWithOpt(t, mom, 3)
	if accMom < accSGD-0.05 {
		t.Errorf("momentum %v clearly below sgd %v after 3 epochs", accMom, accSGD)
	}
}

func TestTrainWithErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork("e", []int{2}, NewDense(2, 2, rng))
	sgd, err := NewSGD(0.1)
	if err != nil {
		t.Fatal(err)
	}
	x, err := FromSlice([]float64{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := []Sample{{X: x, Label: 0}}
	if _, err := TrainWith(net, nil, TrainConfig{Epochs: 1, BatchSize: 1}, sgd, rng); err == nil {
		t.Error("expected error for empty samples")
	}
	if _, err := TrainWith(net, s, TrainConfig{Epochs: 0, BatchSize: 1}, sgd, rng); err == nil {
		t.Error("expected error for zero epochs")
	}
	if _, err := TrainWith(net, s, TrainConfig{Epochs: 1, BatchSize: 1}, nil, rng); err == nil {
		t.Error("expected error for nil optimizer")
	}
}

func TestOptimizerStateIsolation(t *testing.T) {
	// Adam state is keyed per tensor: two steps on the same net must not
	// panic or mix buffers, and gradients are cleared after each step.
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork("iso", []int{2}, NewDense(2, 2, rng))
	adam, err := NewAdam(0.01)
	if err != nil {
		t.Fatal(err)
	}
	x, err := FromSlice([]float64{1, -1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		logits := net.Forward(x)
		_, grad := CrossEntropyLoss(logits, 0)
		net.Backward(grad)
		adam.Step(net, 1)
		for _, l := range net.Layers {
			for _, g := range l.Grads() {
				for _, v := range g.Data {
					if v != 0 {
						t.Fatal("gradients not cleared after Step")
					}
				}
			}
		}
	}
}
