package nn

import (
	"math/rand"
)

// The constructors below mirror the paper's evaluated architectures (Sec. V):
// small CNNs with two conv+pool stages, LeNet-5, MLPs with two hidden layers,
// and a slim depthwise-separable-style CNN standing in for MobileNet V1.
// Spatial sizes are kept small so training on the synthetic datasets stays
// fast; relative capacity ordering (and thus relative loss/energy) matches
// the paper's zoo.

// flattenDim computes the flattened feature count after running the given
// layers over the input shape.
func flattenDim(in []int, layers ...Layer) int {
	shape := in
	for _, l := range layers {
		shape = l.OutShape(shape)
	}
	n := 1
	for _, d := range shape {
		n *= d
	}
	return n
}

// BuildCNN builds the paper's CNN: two 3x3 conv layers (c1, c2 channels),
// each followed by ReLU and 2x2 max pooling, then a fully connected layer
// and the class logits.
func BuildCNN(name string, in []int, c1, c2, hidden, classes int, rng *rand.Rand) *Network {
	conv1 := NewConv2D(in[0], c1, 3, rng)
	pool1 := NewMaxPool2D()
	conv2 := NewConv2D(c1, c2, 3, rng)
	pool2 := NewMaxPool2D()
	front := []Layer{conv1, NewReLU(), pool1, conv2, NewReLU(), pool2, NewFlatten()}
	flat := flattenDim(in, front...)
	layers := append(front,
		NewDense(flat, hidden, rng),
		NewReLU(),
		NewDense(hidden, classes, rng),
	)
	return NewNetwork(name, in, layers...)
}

// BuildLeNet5 builds a LeNet-5-style network: conv(6)-pool-conv(16)-pool
// followed by dense 120-84-classes. The convolution kernel is 5x5 as in the
// original; channel counts scale with the `scale` factor so the zoo can hold
// two sizes of the same family.
func BuildLeNet5(name string, in []int, scale int, classes int, rng *rand.Rand) *Network {
	if scale <= 0 {
		scale = 1
	}
	conv1 := NewConv2D(in[0], 6*scale, 5, rng)
	pool1 := NewMaxPool2D()
	conv2 := NewConv2D(6*scale, 16*scale, 5, rng)
	pool2 := NewMaxPool2D()
	front := []Layer{conv1, NewReLU(), pool1, conv2, NewReLU(), pool2, NewFlatten()}
	flat := flattenDim(in, front...)
	layers := append(front,
		NewDense(flat, 120*scale, rng),
		NewReLU(),
		NewDense(120*scale, 84*scale, rng),
		NewReLU(),
		NewDense(84*scale, classes, rng),
	)
	return NewNetwork(name, in, layers...)
}

// BuildMLP builds a multilayer perceptron with two hidden layers.
func BuildMLP(name string, in []int, h1, h2, classes int, rng *rand.Rand) *Network {
	flat := 1
	for _, d := range in {
		flat *= d
	}
	return NewNetwork(name, in,
		NewFlatten(),
		NewDense(flat, h1, rng),
		NewReLU(),
		NewDense(h1, h2, rng),
		NewReLU(),
		NewDense(h2, classes, rng),
	)
}

// BuildMobileCNN builds a slim CNN standing in for MobileNet V1: a 3x3 stem
// followed by 1x1 pointwise convolutions (the cheap-compute trick MobileNet
// relies on), pooling, and a small classifier head.
func BuildMobileCNN(name string, in []int, stem, point, classes int, rng *rand.Rand) *Network {
	conv1 := NewConv2D(in[0], stem, 3, rng)
	pool1 := NewMaxPool2D()
	pw1 := NewConv2D(stem, point, 1, rng)
	pool2 := NewMaxPool2D()
	pw2 := NewConv2D(point, point, 1, rng)
	front := []Layer{conv1, NewReLU(), pool1, pw1, NewReLU(), pool2, pw2, NewReLU(), NewFlatten()}
	flat := flattenDim(in, front...)
	layers := append(front,
		NewDense(flat, classes, rng),
	)
	return NewNetwork(name, in, layers...)
}
