package trading

import (
	"fmt"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// RandomTrader buys and sells uniformly random quantities each slot (paper
// baseline "Random"). Its decisions are unrelated to workload, price level,
// or the cap — exactly the behavior Figs. 7 and 9 attribute to "-Ran"
// combinations.
type RandomTrader struct {
	maxQty float64
	rng    *rand.Rand
}

var _ Trader = (*RandomTrader)(nil)

// NewRandomTrader creates the Random baseline trading up to maxQty per side
// per slot.
func NewRandomTrader(maxQty float64, rng *rand.Rand) (*RandomTrader, error) {
	if maxQty <= 0 {
		return nil, fmt.Errorf("trading: maxQty must be positive, got %g", maxQty)
	}
	return &RandomTrader{maxQty: maxQty, rng: rng}, nil
}

// Name implements Trader.
func (r *RandomTrader) Name() string { return "Random" }

// Decide implements Trader.
func (r *RandomTrader) Decide(int, Quote) Decision {
	return Decision{
		Buy:  r.rng.Float64() * r.maxQty,
		Sell: r.rng.Float64() * r.maxQty,
	}
}

// Observe implements Trader.
func (r *RandomTrader) Observe(int, float64, Quote, Decision) {}

// ThresholdTrader buys a fixed quantity whenever the buy price is below a
// threshold and sells a fixed quantity whenever the sell price is above a
// threshold (paper baseline "Threshold"). Like Random, it ignores workload
// and cap.
type ThresholdTrader struct {
	buyBelow, sellAbove float64
	buyQty, sellQty     float64
}

var _ Trader = (*ThresholdTrader)(nil)

// NewThresholdTrader creates the Threshold baseline.
func NewThresholdTrader(buyBelow, buyQty, sellAbove, sellQty float64) (*ThresholdTrader, error) {
	if buyQty < 0 || sellQty < 0 {
		return nil, fmt.Errorf("trading: negative quantities buy=%g sell=%g", buyQty, sellQty)
	}
	return &ThresholdTrader{
		buyBelow:  buyBelow,
		sellAbove: sellAbove,
		buyQty:    buyQty,
		sellQty:   sellQty,
	}, nil
}

// Name implements Trader.
func (t *ThresholdTrader) Name() string { return "Threshold" }

// Decide implements Trader.
func (t *ThresholdTrader) Decide(_ int, q Quote) Decision {
	var d Decision
	if q.Buy < t.buyBelow {
		d.Buy = t.buyQty
	}
	if q.Sell > t.sellAbove {
		d.Sell = t.sellQty
	}
	return d
}

// Observe implements Trader.
func (t *ThresholdTrader) Observe(int, float64, Quote, Decision) {}

// LyapunovTrader is the paper's state-of-the-art comparison (Yang et al.,
// GLOBECOM 2022 style): drift-plus-penalty with a virtual queue Q^t that
// tracks cumulative constraint violation. Each slot it minimizes
// V*f^t(Z) + Q^t*(-z + w) over the box [0, ZMax]^2, whose bang-bang solution
// buys at full rate when the queue pressure exceeds the V-weighted price and
// sells when the V-weighted sell price exceeds the queue pressure. The queue
// is updated with the realized constraint gap.
type LyapunovTrader struct {
	v          float64 // penalty weight V
	zMax       float64
	capPerSlot float64

	queue float64
}

var _ Trader = (*LyapunovTrader)(nil)

// NewLyapunovTrader creates the Lyapunov baseline. v > 0 trades off cost
// against queue (constraint) pressure; zMax caps per-slot volume.
func NewLyapunovTrader(v, zMax, initialCap float64, horizon int) (*LyapunovTrader, error) {
	if v <= 0 {
		return nil, fmt.Errorf("trading: V must be positive, got %g", v)
	}
	if zMax <= 0 {
		return nil, fmt.Errorf("trading: zMax must be positive, got %g", zMax)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("trading: horizon must be positive, got %d", horizon)
	}
	if initialCap < 0 {
		return nil, fmt.Errorf("trading: negative cap %g", initialCap)
	}
	return &LyapunovTrader{v: v, zMax: zMax, capPerSlot: initialCap / float64(horizon)}, nil
}

// Name implements Trader.
func (l *LyapunovTrader) Name() string { return "Lyapunov" }

// Queue returns the current virtual-queue length (diagnostics).
func (l *LyapunovTrader) Queue() float64 { return l.queue }

// Decide implements Trader.
func (l *LyapunovTrader) Decide(_ int, q Quote) Decision {
	var d Decision
	// d/dz [V*c*z - Q*z] = V*c - Q: buy at full rate when negative.
	if l.queue > l.v*q.Buy {
		d.Buy = l.zMax
	}
	// d/dw [-V*r*w + Q*w] = -V*r + Q: sell at full rate when negative.
	if l.v*q.Sell > l.queue {
		d.Sell = l.zMax
	}
	return d
}

// Observe implements Trader: queue update with the realized gap.
func (l *LyapunovTrader) Observe(_ int, emission float64, _ Quote, d Decision) {
	gap := ConstraintGap(emission, l.capPerSlot, d)
	l.queue = numeric.Positive(l.queue + gap)
}

// OneShotTrader plays the clairvoyant per-slot optimum: it observes the
// slot's emission before deciding (unlike every online trader) and trades
// exactly the deficit/surplus. It realizes the comparator sequence of
// Theorem 2 and is used for regret accounting and the Offline scheme.
type OneShotTrader struct {
	capPerSlot float64
	emissions  []float64
}

var _ Trader = (*OneShotTrader)(nil)

// NewOneShotTrader creates the clairvoyant per-slot trader over a known
// emission series.
func NewOneShotTrader(emissions []float64, initialCap float64) (*OneShotTrader, error) {
	if len(emissions) == 0 {
		return nil, fmt.Errorf("trading: empty emission series")
	}
	e := make([]float64, len(emissions))
	copy(e, emissions)
	return &OneShotTrader{
		capPerSlot: initialCap / float64(len(emissions)),
		emissions:  e,
	}, nil
}

// Name implements Trader.
func (o *OneShotTrader) Name() string { return "OneShot" }

// Decide implements Trader.
func (o *OneShotTrader) Decide(t int, q Quote) Decision {
	if t < 0 || t >= len(o.emissions) {
		return Decision{}
	}
	return OneShotOptimum(o.emissions[t], o.capPerSlot, q)
}

// Observe implements Trader.
func (o *OneShotTrader) Observe(int, float64, Quote, Decision) {}

// NullTrader never trades. It lets a slot driver run the full protocol when
// trading is decided outside the loop — the clairvoyant Offline scheme runs
// the engine with a NullTrader and patches in the LP optimum afterwards.
type NullTrader struct{}

var _ Trader = NullTrader{}

// NewNullTrader creates the no-op trader.
func NewNullTrader() NullTrader { return NullTrader{} }

// Name implements Trader.
func (NullTrader) Name() string { return "Null" }

// Decide implements Trader.
func (NullTrader) Decide(int, Quote) Decision { return Decision{} }

// Observe implements Trader.
func (NullTrader) Observe(int, float64, Quote, Decision) {}
