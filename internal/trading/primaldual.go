package trading

import (
	"fmt"
	"math"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// PrimalDual is the paper's Algorithm 2: rectified online primal-dual
// carbon trading.
//
// At slot t it solves the proximal one-shot problem P2^t
//
//	min_{Z in X}  grad f^{t-1}(Z1bar)·(Z - Zbar) + lambda^t g^{t-1}(Z)
//	              + ||Z - Zbar||^2 / (2*gamma2)
//
// whose solution is the closed-form rectified step
//
//	z^t = clamp(zbar - gamma2*(c^{t-1} - lambda^t), 0, ZMax)
//	w^t = clamp(wbar - gamma2*(lambda^t - r^{t-1}), 0, ZMax)
//
// followed, after the slot's emission is realized, by the dual ascent
//
//	lambda^{t+1} = [lambda^t + gamma1 * g^t(Z^t)]^+.
//
// Only information strictly before t enters the decision — no current or
// future prices/emissions — which is the algorithm's headline property.
// ZMax bounds the feasible set (the paper's Assumption 2).
type PrimalDual struct {
	cfg PrimalDualConfig

	lambda   float64
	zBar     Decision // previous decision Zbar^{t-1}
	prevQ    Quote    // prices of slot t-1
	havePrev bool

	gapSum float64 // running sum of g^t for diagnostics
}

var _ Trader = (*PrimalDual)(nil)

// PrimalDualConfig parameterizes Algorithm 2.
type PrimalDualConfig struct {
	// InitialCap is the allowance cap R; Horizon is T. The per-slot
	// apportioning R/T enters g^t.
	InitialCap float64
	Horizon    int
	// Gamma1 and Gamma2 are the dual and primal step sizes. Theorem 2
	// suggests O(T^{-1/3}) scaling; DefaultPrimalDualConfig applies it.
	Gamma1, Gamma2 float64
	// ZMax caps single-slot trade volume, bounding the feasible set.
	ZMax float64
}

// DefaultPrimalDualConfig returns Theorem-2-scaled step sizes for a given
// cap, horizon, and a rough per-slot emission scale (e.g. the cap/horizon).
func DefaultPrimalDualConfig(initialCap float64, horizon int) PrimalDualConfig {
	tCube := math.Pow(float64(horizon), -1.0/3.0)
	scale := 1.0
	if initialCap > 0 && horizon > 0 {
		scale = initialCap / float64(horizon)
		if scale <= 0 {
			scale = 1
		}
	}
	return PrimalDualConfig{
		InitialCap: initialCap,
		Horizon:    horizon,
		// The dual step converts constraint mass (kg) into price units; the
		// primal step converts price units into trade volume. Scaling both
		// by T^{-1/3} delivers the sub-linear regret/fit of Theorem 2.
		Gamma1: 4 * tCube / scale,
		Gamma2: 4 * tCube * scale,
		ZMax:   20 * scale * math.Sqrt(float64(horizon)),
	}
}

// NewPrimalDual creates Algorithm 2.
func NewPrimalDual(cfg PrimalDualConfig) (*PrimalDual, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("trading: horizon must be positive, got %d", cfg.Horizon)
	}
	if cfg.InitialCap < 0 {
		return nil, fmt.Errorf("trading: negative initial cap %g", cfg.InitialCap)
	}
	if cfg.Gamma1 <= 0 || cfg.Gamma2 <= 0 {
		return nil, fmt.Errorf("trading: step sizes must be positive, got gamma1=%g gamma2=%g", cfg.Gamma1, cfg.Gamma2)
	}
	if cfg.ZMax <= 0 {
		return nil, fmt.Errorf("trading: ZMax must be positive, got %g", cfg.ZMax)
	}
	return &PrimalDual{cfg: cfg}, nil
}

// Name implements Trader.
func (p *PrimalDual) Name() string { return "PrimalDual" }

// CapPerSlot returns R/T.
func (p *PrimalDual) CapPerSlot() float64 {
	return p.cfg.InitialCap / float64(p.cfg.Horizon)
}

// Lambda returns the current dual multiplier (diagnostics).
func (p *PrimalDual) Lambda() float64 { return p.lambda }

// Decide implements Trader. The quote argument is intentionally unused:
// Algorithm 2 decides from information strictly before t.
func (p *PrimalDual) Decide(int, Quote) Decision {
	if !p.havePrev {
		// Z^0: no history yet; start from the initial decision (0, 0).
		return Decision{}
	}
	z := p.zBar.Buy - p.cfg.Gamma2*(p.prevQ.Buy-p.lambda)
	w := p.zBar.Sell - p.cfg.Gamma2*(p.lambda-p.prevQ.Sell)
	return Decision{
		Buy:  numeric.Clamp(z, 0, p.cfg.ZMax),
		Sell: numeric.Clamp(w, 0, p.cfg.ZMax),
	}
}

// Observe implements Trader: dual ascent on the realized constraint gap.
func (p *PrimalDual) Observe(_ int, emission float64, q Quote, d Decision) {
	gap := ConstraintGap(emission, p.CapPerSlot(), d)
	p.gapSum += gap
	p.lambda = numeric.Positive(p.lambda + p.cfg.Gamma1*gap)
	p.zBar = d
	p.prevQ = q
	p.havePrev = true
}

// GapSum returns the running sum of g^t (diagnostics; [GapSum]^+ is the fit).
func (p *PrimalDual) GapSum() float64 { return p.gapSum }

// SolveProximal solves P2^t numerically by projected gradient descent on the
// proximal objective. It exists to cross-check the closed-form Decide step
// in tests and ablations; production code uses Decide.
func (p *PrimalDual) SolveProximal(prev Decision, prevQ Quote, lambda float64, iters int) Decision {
	obj := func(z, w float64) (dz, dw float64) {
		dz = prevQ.Buy - lambda + (z-prev.Buy)/p.cfg.Gamma2
		dw = -prevQ.Sell + lambda + (w-prev.Sell)/p.cfg.Gamma2
		return dz, dw
	}
	z, w := prev.Buy, prev.Sell
	step := p.cfg.Gamma2 / 2
	for i := 0; i < iters; i++ {
		dz, dw := obj(z, w)
		z = numeric.Clamp(z-step*dz, 0, p.cfg.ZMax)
		w = numeric.Clamp(w-step*dw, 0, p.cfg.ZMax)
	}
	return Decision{Buy: z, Sell: w}
}
