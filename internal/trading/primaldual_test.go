package trading

import (
	"math"
	"math/rand"
	"testing"

	"github.com/carbonedge/carbonedge/internal/market"
)

func newPD(t *testing.T, cap float64, horizon int) *PrimalDual {
	t.Helper()
	pd, err := NewPrimalDual(DefaultPrimalDualConfig(cap, horizon))
	if err != nil {
		t.Fatalf("NewPrimalDual: %v", err)
	}
	return pd
}

func TestNewPrimalDualErrors(t *testing.T) {
	base := DefaultPrimalDualConfig(500, 160)
	tests := []struct {
		name   string
		mutate func(*PrimalDualConfig)
	}{
		{"zero horizon", func(c *PrimalDualConfig) { c.Horizon = 0 }},
		{"negative cap", func(c *PrimalDualConfig) { c.InitialCap = -1 }},
		{"zero gamma1", func(c *PrimalDualConfig) { c.Gamma1 = 0 }},
		{"zero gamma2", func(c *PrimalDualConfig) { c.Gamma2 = 0 }},
		{"zero zmax", func(c *PrimalDualConfig) { c.ZMax = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base
			tt.mutate(&cfg)
			if _, err := NewPrimalDual(cfg); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPrimalDualFirstSlotIsZero(t *testing.T) {
	pd := newPD(t, 500, 160)
	d := pd.Decide(0, Quote{Buy: 10, Sell: 9})
	if d.Buy != 0 || d.Sell != 0 {
		t.Errorf("first decision = %+v, want zero", d)
	}
}

func TestPrimalDualIgnoresCurrentQuote(t *testing.T) {
	// Algorithm 2's headline property: the decision at t uses only history.
	run := func(currentQuote Quote) Decision {
		pd := newPD(t, 500, 160)
		q := Quote{Buy: 8, Sell: 7.2}
		d := pd.Decide(0, q)
		pd.Observe(0, 5, q, d)
		return pd.Decide(1, currentQuote)
	}
	d1 := run(Quote{Buy: 6, Sell: 5.4})
	d2 := run(Quote{Buy: 10.9, Sell: 9.81})
	if d1 != d2 {
		t.Errorf("decision depends on current quote: %+v vs %+v", d1, d2)
	}
}

func TestPrimalDualClosedFormMatchesNumericalProximal(t *testing.T) {
	pd := newPD(t, 500, 160)
	prevQ := Quote{Buy: 9, Sell: 8.1}
	d0 := pd.Decide(0, prevQ)
	pd.Observe(0, 7, prevQ, d0)
	closed := pd.Decide(1, Quote{Buy: 10, Sell: 9})
	numerical := pd.SolveProximal(d0, prevQ, pd.Lambda(), 4000)
	if math.Abs(closed.Buy-numerical.Buy) > 1e-6 || math.Abs(closed.Sell-numerical.Sell) > 1e-6 {
		t.Errorf("closed form %+v != numerical %+v", closed, numerical)
	}
}

func TestPrimalDualLambdaNonNegative(t *testing.T) {
	pd := newPD(t, 500, 160)
	rng := rand.New(rand.NewSource(3))
	for slot := 0; slot < 160; slot++ {
		q := Quote{Buy: 6 + rng.Float64()*5}
		q.Sell = q.Buy * 0.9
		d := pd.Decide(slot, q)
		pd.Observe(slot, rng.Float64()*4, q, d)
		if pd.Lambda() < 0 {
			t.Fatalf("lambda went negative: %v", pd.Lambda())
		}
	}
}

func TestPrimalDualBoundsDecisions(t *testing.T) {
	cfg := DefaultPrimalDualConfig(500, 160)
	cfg.ZMax = 1.5
	pd, err := NewPrimalDual(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for slot := 0; slot < 160; slot++ {
		q := Quote{Buy: 6 + rng.Float64()*5}
		q.Sell = q.Buy * 0.9
		d := pd.Decide(slot, q)
		if d.Buy < 0 || d.Buy > cfg.ZMax || d.Sell < 0 || d.Sell > cfg.ZMax {
			t.Fatalf("decision %+v outside [0, %v]", d, cfg.ZMax)
		}
		pd.Observe(slot, rng.Float64()*10, q, d)
	}
}

// runPD plays PrimalDual against an emission/price series and returns the
// realized cost, the one-shot-comparator cost, and the fit.
func runPD(t *testing.T, initialCap float64, emissions []float64, prices *market.Prices) (cost, comparatorCost, fit float64) {
	t.Helper()
	horizon := len(emissions)
	pd := newPD(t, initialCap, horizon)
	capPerSlot := initialCap / float64(horizon)
	decisions := make([]Decision, horizon)
	for slot := 0; slot < horizon; slot++ {
		q := Quote{Buy: prices.Buy[slot], Sell: prices.Sell[slot]}
		d := pd.Decide(slot, q)
		decisions[slot] = d
		cost += d.Cost(q)
		opt := OneShotOptimum(emissions[slot], capPerSlot, q)
		comparatorCost += opt.Cost(q)
		pd.Observe(slot, emissions[slot], q, d)
	}
	f, err := Fit(emissions, decisions, initialCap)
	if err != nil {
		t.Fatal(err)
	}
	return cost, comparatorCost, f
}

func makeSeries(t *testing.T, horizon int, emissionMean float64, seed int64) ([]float64, *market.Prices) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	prices, err := market.GeneratePrices(market.DefaultPriceConfig(), horizon, rng)
	if err != nil {
		t.Fatal(err)
	}
	emissions := make([]float64, horizon)
	for i := range emissions {
		emissions[i] = emissionMean * (0.5 + rng.Float64())
	}
	return emissions, prices
}

func TestPrimalDualTimeAveragedRegretAndFitShrink(t *testing.T) {
	// Theorem 2: regret and fit are O(T^{2/3}), so their time averages must
	// shrink as T grows.
	avg := func(horizon int) (regretPerT, fitPerT float64) {
		var regretSum, fitSum float64
		const runs = 3
		for seed := int64(0); seed < runs; seed++ {
			emissions, prices := makeSeries(t, horizon, 4, 100+seed)
			initialCap := 2 * float64(horizon) // per-slot cap 2, mean emission 4 => must buy
			cost, comparator, fit := runPD(t, initialCap, emissions, prices)
			regretSum += (cost - comparator) / float64(horizon)
			fitSum += fit / float64(horizon)
		}
		return regretSum / runs, fitSum / runs
	}
	regShort, fitShort := avg(100)
	regLong, fitLong := avg(3000)
	if fitLong > fitShort*0.5 && fitLong > 0.05 {
		t.Errorf("time-averaged fit did not shrink: short=%v long=%v", fitShort, fitLong)
	}
	// Regret per slot must not diverge and should stay within a modest band
	// around the comparator (which peeks at the current slot's emission and
	// prices, so the online algorithm cannot match it exactly).
	if regLong > math.Max(regShort, 1.0) {
		t.Errorf("time-averaged regret grew: short=%v long=%v", regShort, regLong)
	}
}

func TestPrimalDualCoversEmissionsLongRun(t *testing.T) {
	// With persistent deficit the algorithm must end up buying roughly the
	// uncovered emission mass: fit well below doing nothing.
	horizon := 2000
	emissions, prices := makeSeries(t, horizon, 4, 7)
	initialCap := 2 * float64(horizon)
	_, _, fit := runPD(t, initialCap, emissions, prices)

	noTrade := make([]Decision, horizon)
	fitNoTrade, err := Fit(emissions, noTrade, initialCap)
	if err != nil {
		t.Fatal(err)
	}
	if fit > fitNoTrade*0.1 {
		t.Errorf("fit %v not well below no-trade fit %v", fit, fitNoTrade)
	}
}

func TestPrimalDualSellsSurplus(t *testing.T) {
	// With a generous cap the algorithm should sell allowances and earn
	// revenue (negative cost).
	horizon := 2000
	emissions, prices := makeSeries(t, horizon, 1, 8)
	initialCap := 5 * float64(horizon) // per-slot cap 5 vs mean emission 1
	cost, _, fit := runPD(t, initialCap, emissions, prices)
	if cost >= 0 {
		t.Errorf("cost = %v, want negative (net seller)", cost)
	}
	// Theorem 2 guarantees sub-linear fit, not zero: transient overshoot in
	// selling leaves a small violation relative to the cap.
	if fit > 0.05*initialCap {
		t.Errorf("fit = %v, want < 5%% of cap %v", fit, initialCap)
	}
}

func TestCapPerSlot(t *testing.T) {
	pd := newPD(t, 500, 160)
	if got := pd.CapPerSlot(); math.Abs(got-3.125) > 1e-12 {
		t.Errorf("CapPerSlot = %v, want 3.125", got)
	}
}
