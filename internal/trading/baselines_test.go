package trading

import (
	"math"
	"math/rand"
	"testing"
)

func TestRandomTrader(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tr, err := NewRandomTrader(5, rng)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "Random" {
		t.Errorf("Name = %q", tr.Name())
	}
	for i := 0; i < 1000; i++ {
		d := tr.Decide(i, Quote{Buy: 8, Sell: 7.2})
		if d.Buy < 0 || d.Buy > 5 || d.Sell < 0 || d.Sell > 5 {
			t.Fatalf("decision %+v outside [0,5]", d)
		}
		tr.Observe(i, 1, Quote{}, d)
	}
	if _, err := NewRandomTrader(0, rng); err == nil {
		t.Error("expected error for zero maxQty")
	}
}

func TestThresholdTrader(t *testing.T) {
	tr, err := NewThresholdTrader(7 /* buyBelow */, 2 /* buyQty */, 9 /* sellAbove */, 3 /* sellQty */)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		q    Quote
		want Decision
	}{
		{"cheap buys", Quote{Buy: 6, Sell: 5.4}, Decision{Buy: 2}},
		{"expensive sells", Quote{Buy: 10.5, Sell: 9.45}, Decision{Sell: 3}},
		{"middle does nothing", Quote{Buy: 8, Sell: 7.2}, Decision{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tr.Decide(0, tt.q); got != tt.want {
				t.Errorf("Decide(%+v) = %+v, want %+v", tt.q, got, tt.want)
			}
		})
	}
	if _, err := NewThresholdTrader(7, -1, 9, 1); err == nil {
		t.Error("expected error for negative quantity")
	}
}

func TestThresholdIgnoresWorkload(t *testing.T) {
	tr, err := NewThresholdTrader(7, 2, 9, 3)
	if err != nil {
		t.Fatal(err)
	}
	q := Quote{Buy: 6, Sell: 5.4}
	d1 := tr.Decide(0, q)
	tr.Observe(0, 1000 /* huge emission */, q, d1)
	d2 := tr.Decide(1, q)
	if d1 != d2 {
		t.Error("Threshold must not react to emissions")
	}
}

func TestLyapunovConstructorErrors(t *testing.T) {
	if _, err := NewLyapunovTrader(0, 1, 10, 10); err == nil {
		t.Error("expected error for V = 0")
	}
	if _, err := NewLyapunovTrader(1, 0, 10, 10); err == nil {
		t.Error("expected error for zMax = 0")
	}
	if _, err := NewLyapunovTrader(1, 1, 10, 0); err == nil {
		t.Error("expected error for zero horizon")
	}
	if _, err := NewLyapunovTrader(1, 1, -1, 10); err == nil {
		t.Error("expected error for negative cap")
	}
}

func TestLyapunovQueueDynamics(t *testing.T) {
	// Cap 0 => capPerSlot 0; every emission inflates the queue until the
	// trader starts buying.
	tr, err := NewLyapunovTrader(1 /* V */, 2 /* zMax */, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	q := Quote{Buy: 8, Sell: 7.2}
	// Initially the queue is empty: no buying, and selling looks free
	// revenue (V*r > Q = 0).
	d := tr.Decide(0, q)
	if d.Buy != 0 {
		t.Errorf("empty queue should not buy, got %+v", d)
	}
	// Push emissions until the queue exceeds V*c = 8.
	for slot := 0; tr.Queue() <= 8 && slot < 100; slot++ {
		d := tr.Decide(slot, q)
		tr.Observe(slot, 3, q, d)
	}
	if tr.Queue() <= 8 {
		t.Fatal("queue never built up")
	}
	d = tr.Decide(99, q)
	if d.Buy != 2 {
		t.Errorf("pressured queue should buy at full rate, got %+v", d)
	}
	if d.Sell != 0 {
		t.Errorf("pressured queue should not sell, got %+v", d)
	}
}

func TestLyapunovQueueNonNegative(t *testing.T) {
	tr, err := NewLyapunovTrader(1, 5, 1000, 10)
	if err != nil {
		t.Fatal(err)
	}
	q := Quote{Buy: 8, Sell: 7.2}
	for slot := 0; slot < 50; slot++ {
		d := tr.Decide(slot, q)
		tr.Observe(slot, 0, q, d) // zero emissions, generous cap
		if tr.Queue() < 0 {
			t.Fatal("queue went negative")
		}
	}
}

func TestLyapunovTradeoffWithV(t *testing.T) {
	// Larger V weights cost more heavily, so buying starts later (queue
	// must grow larger first) and the final violation is larger.
	run := func(v float64) float64 {
		tr, err := NewLyapunovTrader(v, 2, 0, 200)
		if err != nil {
			t.Fatal(err)
		}
		q := Quote{Buy: 8, Sell: 7.2}
		emissions := make([]float64, 200)
		decisions := make([]Decision, 200)
		for slot := 0; slot < 200; slot++ {
			d := tr.Decide(slot, q)
			decisions[slot] = d
			emissions[slot] = 1
			tr.Observe(slot, 1, q, d)
		}
		fit, err := Fit(emissions, decisions, 0)
		if err != nil {
			t.Fatal(err)
		}
		return fit
	}
	if fitSmall, fitLarge := run(0.5), run(20); fitSmall > fitLarge {
		t.Errorf("fit(V=0.5)=%v > fit(V=20)=%v; V should trade cost for violation", fitSmall, fitLarge)
	}
}

func TestOneShotTrader(t *testing.T) {
	emissions := []float64{5, 1, 3}
	tr, err := NewOneShotTrader(emissions, 9) // capPerSlot 3
	if err != nil {
		t.Fatal(err)
	}
	q := Quote{Buy: 10, Sell: 9}
	wants := []Decision{{Buy: 2}, {Sell: 2}, {}}
	for slot, want := range wants {
		got := tr.Decide(slot, q)
		if math.Abs(got.Buy-want.Buy) > 1e-12 || math.Abs(got.Sell-want.Sell) > 1e-12 {
			t.Errorf("slot %d: got %+v, want %+v", slot, got, want)
		}
		tr.Observe(slot, emissions[slot], q, got)
	}
	// Out-of-range slots trade nothing.
	if d := tr.Decide(99, q); d != (Decision{}) {
		t.Errorf("out-of-range decision = %+v", d)
	}
	if _, err := NewOneShotTrader(nil, 1); err == nil {
		t.Error("expected error for empty series")
	}
}

func TestTraderInterfacesCompile(t *testing.T) {
	// Interface compliance is asserted at compile time via var _ Trader
	// declarations; this test just exercises Name on each.
	rng := rand.New(rand.NewSource(2))
	rt, err := NewRandomTrader(1, rng)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := NewThresholdTrader(1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	lt, err := NewLyapunovTrader(1, 1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ot, err := NewOneShotTrader([]float64{1}, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range []Trader{rt, tt, lt, ot} {
		if tr.Name() == "" {
			t.Error("empty trader name")
		}
	}
}
