package trading

import (
	"math"
	"testing"
)

// Empirical verification of Theorem 2: both the regret against the one-shot
// comparators and the fit grow as O(T^{2/3}), i.e. their growth exponents
// stay clearly below 1.

func TestTheorem2FitGrowthExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon sweep")
	}
	horizons := []int{500, 2000, 8000}
	const seeds = 3
	var logT, logF []float64
	for _, h := range horizons {
		sum := 0.0
		for s := int64(0); s < seeds; s++ {
			emissions, prices := makeSeries(t, h, 4, 500+s)
			initialCap := 2 * float64(h)
			_, _, fit := runPD(t, initialCap, emissions, prices)
			sum += fit
		}
		avg := sum / seeds
		if avg <= 0 {
			avg = 1e-9
		}
		logT = append(logT, math.Log(float64(h)))
		logF = append(logF, math.Log(avg))
	}
	slope := slopeOf(logT, logF)
	t.Logf("empirical fit growth exponent: %.3f (Theorem 2 predicts <= 2/3)", slope)
	if slope > 0.9 {
		t.Errorf("fit growth exponent %.3f looks linear", slope)
	}
}

func TestTheorem2TimeAveragedRegretVanishes(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon sweep")
	}
	// Reg_2^T / T must shrink as T grows (Theorem 2's O(T^{2/3}) regret).
	avgAt := func(h int) float64 {
		var sum float64
		const seeds = 3
		for s := int64(0); s < seeds; s++ {
			emissions, prices := makeSeries(t, h, 4, 900+s)
			initialCap := 2 * float64(h)
			cost, comparator, _ := runPD(t, initialCap, emissions, prices)
			sum += (cost - comparator) / float64(h)
		}
		return sum / seeds
	}
	short := avgAt(500)
	long := avgAt(8000)
	t.Logf("time-averaged P2 regret: T=500 -> %.4f, T=8000 -> %.4f", short, long)
	if long > short && long > 0.1*math.Abs(short)+0.5 {
		t.Errorf("time-averaged regret did not shrink: %v -> %v", short, long)
	}
}

// slopeOf returns the least-squares slope of y on x.
func slopeOf(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
