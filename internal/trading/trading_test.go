package trading

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOneShotOptimum(t *testing.T) {
	q := Quote{Buy: 10, Sell: 9}
	tests := []struct {
		name       string
		emission   float64
		capPerSlot float64
		want       Decision
	}{
		{"deficit", 5, 3, Decision{Buy: 2}},
		{"surplus", 1, 3, Decision{Sell: 2}},
		{"balanced", 3, 3, Decision{}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := OneShotOptimum(tt.emission, tt.capPerSlot, q)
			if math.Abs(got.Buy-tt.want.Buy) > 1e-12 || math.Abs(got.Sell-tt.want.Sell) > 1e-12 {
				t.Errorf("got %+v, want %+v", got, tt.want)
			}
			// Feasibility: g <= 0.
			if gap := ConstraintGap(tt.emission, tt.capPerSlot, got); gap > 1e-12 {
				t.Errorf("one-shot optimum infeasible: gap=%v", gap)
			}
		})
	}
}

// Property: the one-shot optimum is never beaten by random feasible points.
func TestOneShotOptimumIsOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	prop := func(seed int64) bool {
		emission := rng.Float64() * 10
		capPerSlot := rng.Float64() * 10
		q := Quote{Buy: 5 + rng.Float64()*5}
		q.Sell = q.Buy * 0.9
		opt := OneShotOptimum(emission, capPerSlot, q)
		best := opt.Cost(q)
		for trial := 0; trial < 30; trial++ {
			d := Decision{Buy: rng.Float64() * 20, Sell: rng.Float64() * 20}
			if ConstraintGap(emission, capPerSlot, d) > 0 {
				continue // infeasible
			}
			if d.Cost(q) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOfflineOptimumDeficit(t *testing.T) {
	emissions := []float64{5, 5, 5}
	buy := []float64{10, 7, 9}
	sell := []float64{9, 6.3, 8.1}
	decisions, cost, err := OfflineOptimum(emissions, buy, sell, 10)
	if err != nil {
		t.Fatalf("OfflineOptimum: %v", err)
	}
	// Deficit = 5, cheapest buy = 7 at t=1.
	if math.Abs(cost-35) > 1e-12 {
		t.Errorf("cost = %v, want 35", cost)
	}
	if decisions[1].Buy != 5 || decisions[0].Buy != 0 || decisions[2].Buy != 0 {
		t.Errorf("decisions = %+v", decisions)
	}
}

func TestOfflineOptimumSurplus(t *testing.T) {
	emissions := []float64{1, 1}
	buy := []float64{10, 8}
	sell := []float64{9, 7.2}
	decisions, cost, err := OfflineOptimum(emissions, buy, sell, 10)
	if err != nil {
		t.Fatalf("OfflineOptimum: %v", err)
	}
	// Surplus = 8, best sell = 9 at t=0 -> revenue 72 -> cost -72.
	if math.Abs(cost+72) > 1e-12 {
		t.Errorf("cost = %v, want -72", cost)
	}
	if decisions[0].Sell != 8 {
		t.Errorf("decisions = %+v", decisions)
	}
}

func TestOfflineOptimumErrors(t *testing.T) {
	if _, _, err := OfflineOptimum(nil, nil, nil, 1); err == nil {
		t.Error("expected error for empty horizon")
	}
	if _, _, err := OfflineOptimum([]float64{1}, []float64{1, 2}, []float64{1}, 1); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, _, err := OfflineOptimum([]float64{1}, []float64{5}, []float64{6}, 1); err == nil {
		t.Error("expected error when sell >= buy")
	}
}

// Property: the no-speculation offline optimum is feasible and never beaten
// by random feasible plans of the same class (plans that only buy when the
// horizon has a deficit, or only sell when it has a surplus).
func TestOfflineOptimumIsOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	prop := func(seed int64) bool {
		horizon := 3 + int(seed%5+5)%5
		emissions := make([]float64, horizon)
		buy := make([]float64, horizon)
		sell := make([]float64, horizon)
		for i := range emissions {
			emissions[i] = rng.Float64() * 10
			buy[i] = 6 + rng.Float64()*5
			sell[i] = buy[i] * 0.9
		}
		initialCap := rng.Float64() * 30
		decisions, cost, err := OfflineOptimum(emissions, buy, sell, initialCap)
		if err != nil {
			return false
		}
		// Feasibility.
		if fit, err := Fit(emissions, decisions, initialCap); err != nil || fit > 1e-9 {
			return false
		}
		total := 0.0
		for _, e := range emissions {
			total += e
		}
		deficit := total > initialCap
		// Random feasible same-class plans cannot beat it.
		for trial := 0; trial < 30; trial++ {
			plan := make([]Decision, horizon)
			for i := range plan {
				if deficit {
					plan[i] = Decision{Buy: rng.Float64() * 10}
				} else {
					plan[i] = Decision{Sell: rng.Float64() * 5}
				}
			}
			fit, err := Fit(emissions, plan, initialCap)
			if err != nil {
				return false
			}
			if fit > 0 {
				continue
			}
			planCost := 0.0
			for i, d := range plan {
				planCost += d.Cost(Quote{Buy: buy[i], Sell: sell[i]})
			}
			if planCost < cost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestBoxedOfflineOptimumBasics(t *testing.T) {
	emissions := []float64{5, 5, 5}
	buy := []float64{10, 7, 9}
	sell := []float64{9, 6.3, 8.1}
	// zMax large enough that the deficit fits the cheapest slot; no
	// arbitrage exists (max sell 9 < ... actually 9 > 7: arbitrage exists:
	// buy at 7, sell at 9).
	decisions, cost, err := BoxedOfflineOptimum(emissions, buy, sell, 10, 100)
	if err != nil {
		t.Fatalf("BoxedOfflineOptimum: %v", err)
	}
	// Deficit 5 bought at price 7 = 35; plus one arbitrage pair of 100 at
	// buy 7 is exhausted (capacity 100 minus 5 = 95 units at 7, sold at 9
	// earning 2/unit = -190), then buy at 9 sell at... sell slot 0 capacity
	// exhausted after 100; next sell 8.1 < buy 9: stop.
	// So cost = 35 + 95*7 - 95*9 = 35 - 190 = -155.
	if math.Abs(cost-(-155)) > 1e-9 {
		t.Errorf("cost = %v, want -155", cost)
	}
	if fit, err := Fit(emissions, decisions, 10); err != nil || fit > 1e-9 {
		t.Errorf("boxed optimum infeasible: fit=%v err=%v", fit, err)
	}
}

func TestBoxedOfflineOptimumNoArbitrageWhenUnprofitable(t *testing.T) {
	emissions := []float64{2, 2}
	buy := []float64{10, 10}
	sell := []float64{9, 9}
	decisions, cost, err := BoxedOfflineOptimum(emissions, buy, sell, 10, 50)
	if err != nil {
		t.Fatal(err)
	}
	// Surplus 6 sold at 9 = -54; no arbitrage since sell 9 < buy 10.
	if math.Abs(cost-(-54)) > 1e-9 {
		t.Errorf("cost = %v, want -54", cost)
	}
	totalBuy := 0.0
	for _, d := range decisions {
		totalBuy += d.Buy
	}
	if totalBuy != 0 {
		t.Errorf("bought %v with no profitable arbitrage", totalBuy)
	}
}

func TestBoxedOfflineOptimumErrors(t *testing.T) {
	if _, _, err := BoxedOfflineOptimum(nil, nil, nil, 1, 1); err == nil {
		t.Error("expected error for empty horizon")
	}
	if _, _, err := BoxedOfflineOptimum([]float64{1}, []float64{1, 2}, []float64{1}, 1, 1); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	if _, _, err := BoxedOfflineOptimum([]float64{1}, []float64{5}, []float64{4}, 1, 0); err == nil {
		t.Error("expected error for zero zMax")
	}
	// Deficit 100 with capacity 1*2 per side.
	if _, _, err := BoxedOfflineOptimum([]float64{50, 52}, []float64{5, 5}, []float64{4, 4}, 2, 1); err == nil {
		t.Error("expected error for infeasible deficit")
	}
}

// Property: the boxed LP optimum is feasible, respects the box, and is never
// beaten by random feasible boxed plans (including arbitrage plans).
func TestBoxedOfflineOptimumIsOptimalProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	prop := func(seed int64) bool {
		horizon := 3 + int(seed%4+4)%4
		zMax := 2 + rng.Float64()*5
		emissions := make([]float64, horizon)
		buy := make([]float64, horizon)
		sell := make([]float64, horizon)
		for i := range emissions {
			emissions[i] = rng.Float64() * zMax / 2
			buy[i] = 6 + rng.Float64()*5
			sell[i] = buy[i] * 0.9
		}
		initialCap := rng.Float64() * 10
		decisions, cost, err := BoxedOfflineOptimum(emissions, buy, sell, initialCap, zMax)
		if err != nil {
			return false
		}
		for _, d := range decisions {
			if d.Buy < -1e-9 || d.Buy > zMax+1e-9 || d.Sell < -1e-9 || d.Sell > zMax+1e-9 {
				return false
			}
		}
		if fit, err := Fit(emissions, decisions, initialCap); err != nil || fit > 1e-9 {
			return false
		}
		for trial := 0; trial < 40; trial++ {
			plan := make([]Decision, horizon)
			for i := range plan {
				plan[i] = Decision{Buy: rng.Float64() * zMax, Sell: rng.Float64() * zMax}
			}
			fit, err := Fit(emissions, plan, initialCap)
			if err != nil {
				return false
			}
			if fit > 0 {
				continue
			}
			planCost := 0.0
			for i, d := range plan {
				planCost += d.Cost(Quote{Buy: buy[i], Sell: sell[i]})
			}
			if planCost < cost-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFit(t *testing.T) {
	emissions := []float64{4, 4}
	// Cap 6 => capPerSlot 3; decisions cover 1 of the 2-unit total gap.
	decisions := []Decision{{Buy: 1}, {}}
	fit, err := Fit(emissions, decisions, 6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit-1) > 1e-12 {
		t.Errorf("fit = %v, want 1", fit)
	}
	// Over-covered constraint clips at zero.
	fit, err = Fit(emissions, []Decision{{Buy: 5}, {}}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if fit != 0 {
		t.Errorf("fit = %v, want 0", fit)
	}
	if _, err := Fit([]float64{1}, nil, 6); err == nil {
		t.Error("expected error for mismatched lengths")
	}
	fit, err = Fit(nil, nil, 6)
	if err != nil || fit != 0 {
		t.Errorf("empty fit = %v, %v", fit, err)
	}
}

func TestDecisionCost(t *testing.T) {
	d := Decision{Buy: 2, Sell: 3}
	q := Quote{Buy: 10, Sell: 9}
	if got := d.Cost(q); math.Abs(got-(20-27)) > 1e-12 {
		t.Errorf("Cost = %v, want -7", got)
	}
}
