package trading

import (
	"fmt"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// PricePredictor is the forecasting dependency of the predictive trader,
// satisfied by market.ARPredictor and market.EWMAPredictor. It is declared
// here (consumer side) so the trading package does not depend on market.
type PricePredictor interface {
	Observe(price float64)
	Predict(fallback float64) float64
}

// PredictivePrimalDual implements the paper's future-work extension:
// Algorithm 2 with a causal price-prediction model. The primal step replaces
// the stale last-observed price c^{t-1} in the gradient with a one-step
// forecast c-hat^t built from the same history — shifting purchases toward
// slots the model expects to be cheap. Everything else (dual ascent,
// rectification, feasible box) is unchanged, so the Theorem 2 machinery
// still applies whenever the prediction error is bounded.
type PredictivePrimalDual struct {
	inner     *PrimalDual
	buyPred   PricePredictor
	sellRatio float64
}

var _ Trader = (*PredictivePrimalDual)(nil)

// NewPredictivePrimalDual wraps Algorithm 2 with a price predictor.
// sellRatio is the market's r/c ratio used to derive the sell forecast.
func NewPredictivePrimalDual(cfg PrimalDualConfig, pred PricePredictor, sellRatio float64) (*PredictivePrimalDual, error) {
	if pred == nil {
		return nil, fmt.Errorf("trading: nil price predictor")
	}
	if sellRatio <= 0 || sellRatio >= 1 {
		return nil, fmt.Errorf("trading: sellRatio must be in (0,1), got %g", sellRatio)
	}
	inner, err := NewPrimalDual(cfg)
	if err != nil {
		return nil, err
	}
	return &PredictivePrimalDual{inner: inner, buyPred: pred, sellRatio: sellRatio}, nil
}

// Name implements Trader.
func (p *PredictivePrimalDual) Name() string { return "PredictivePrimalDual" }

// Lambda exposes the dual multiplier (diagnostics).
func (p *PredictivePrimalDual) Lambda() float64 { return p.inner.lambda }

// Decide implements Trader. Like the vanilla algorithm it uses only
// history; the current quote argument is ignored.
func (p *PredictivePrimalDual) Decide(int, Quote) Decision {
	inner := p.inner
	if !inner.havePrev {
		return Decision{}
	}
	// Forecast this slot's prices from the history observed so far.
	cHat := p.buyPred.Predict(inner.prevQ.Buy)
	rHat := cHat * p.sellRatio
	z := inner.zBar.Buy - inner.cfg.Gamma2*(cHat-inner.lambda)
	w := inner.zBar.Sell - inner.cfg.Gamma2*(inner.lambda-rHat)
	return Decision{
		Buy:  numeric.Clamp(z, 0, inner.cfg.ZMax),
		Sell: numeric.Clamp(w, 0, inner.cfg.ZMax),
	}
}

// Observe implements Trader.
func (p *PredictivePrimalDual) Observe(t int, emission float64, q Quote, d Decision) {
	p.buyPred.Observe(q.Buy)
	p.inner.Observe(t, emission, q, d)
}
