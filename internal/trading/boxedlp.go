package trading

import (
	"fmt"
	"sort"
)

// BoxedOfflineOptimum solves the full-horizon trading LP exactly with
// per-slot box constraints:
//
//	min  sum_t z^t c^t - w^t r^t
//	s.t. sum_t (z^t - w^t) >= sum_t emissions^t - R
//	     0 <= z^t, w^t <= zMax
//
// Unlike OfflineOptimum this includes cross-slot arbitrage (sell dear, buy
// cheap) up to the box bound. With a single aggregate constraint the LP has
// a greedy exchange structure: first cover the net deficit with the cheapest
// buy capacity (or monetize the surplus with the dearest sell capacity),
// then add paired buy+sell arbitrage units while the marginal sell price
// exceeds the marginal buy price.
//
// It returns the decisions and the optimal objective value, or an error when
// the deficit exceeds total buy capacity.
func BoxedOfflineOptimum(emissions, buy, sell []float64, initialCap, zMax float64) ([]Decision, float64, error) {
	n := len(emissions)
	if n == 0 {
		return nil, 0, fmt.Errorf("trading: empty horizon")
	}
	if len(buy) != n || len(sell) != n {
		return nil, 0, fmt.Errorf("trading: series lengths differ: %d/%d/%d", n, len(buy), len(sell))
	}
	if zMax <= 0 {
		return nil, 0, fmt.Errorf("trading: zMax must be positive, got %g", zMax)
	}
	total := 0.0
	for _, e := range emissions {
		total += e
	}
	deficit := total - initialCap
	if deficit > float64(n)*zMax {
		return nil, 0, fmt.Errorf("trading: deficit %g exceeds total buy capacity %g", deficit, float64(n)*zMax)
	}

	// Remaining capacity per slot and side.
	zCap := make([]float64, n)
	wCap := make([]float64, n)
	for i := range zCap {
		zCap[i], wCap[i] = zMax, zMax
	}
	decisions := make([]Decision, n)
	cost := 0.0

	buyOrder := make([]int, n) // ascending buy price
	sellOrder := make([]int, n)
	for i := range buyOrder {
		buyOrder[i], sellOrder[i] = i, i
	}
	sort.Slice(buyOrder, func(a, b int) bool { return buy[buyOrder[a]] < buy[buyOrder[b]] })
	sort.Slice(sellOrder, func(a, b int) bool { return sell[sellOrder[a]] > sell[sellOrder[b]] })

	bi, si := 0, 0 // cursors into buyOrder / sellOrder

	// Phase 1: cover the net requirement.
	if deficit > 0 {
		need := deficit
		for need > 1e-15 && bi < n {
			t := buyOrder[bi]
			q := zCap[t]
			if q > need {
				q = need
			}
			decisions[t].Buy += q
			zCap[t] -= q
			cost += q * buy[t]
			need -= q
			if zCap[t] <= 1e-15 {
				bi++
			}
		}
	} else if deficit < 0 {
		surplus := -deficit
		for surplus > 1e-15 && si < n {
			t := sellOrder[si]
			q := wCap[t]
			if q > surplus {
				q = surplus
			}
			decisions[t].Sell += q
			wCap[t] -= q
			cost -= q * sell[t]
			surplus -= q
			if wCap[t] <= 1e-15 {
				si++
			}
		}
	}

	// Phase 2: paired arbitrage while profitable. A pair (buy at t_b, sell
	// at t_s) keeps the net position unchanged and earns r - c per unit.
	for bi < n && si < n {
		tb, ts := buyOrder[bi], sellOrder[si]
		if zCap[tb] <= 1e-15 {
			bi++
			continue
		}
		if wCap[ts] <= 1e-15 {
			si++
			continue
		}
		if sell[ts] <= buy[tb] {
			break // no more profitable pairs
		}
		q := zCap[tb]
		if wCap[ts] < q {
			q = wCap[ts]
		}
		decisions[tb].Buy += q
		decisions[ts].Sell += q
		zCap[tb] -= q
		wCap[ts] -= q
		cost += q*buy[tb] - q*sell[ts]
	}
	return decisions, cost, nil
}
