package trading

import (
	"math"
	"math/rand"
	"testing"

	"github.com/carbonedge/carbonedge/internal/market"
)

func TestNewPredictivePrimalDualErrors(t *testing.T) {
	cfg := DefaultPrimalDualConfig(3, 160)
	if _, err := NewPredictivePrimalDual(cfg, nil, 0.9); err == nil {
		t.Error("expected error for nil predictor")
	}
	if _, err := NewPredictivePrimalDual(cfg, market.NewARPredictor(), 1.5); err == nil {
		t.Error("expected error for sellRatio >= 1")
	}
	bad := cfg
	bad.Horizon = 0
	if _, err := NewPredictivePrimalDual(bad, market.NewARPredictor(), 0.9); err == nil {
		t.Error("expected error for bad inner config")
	}
}

func TestPredictiveFirstSlotZeroAndCausal(t *testing.T) {
	cfg := DefaultPrimalDualConfig(3, 160)
	p, err := NewPredictivePrimalDual(cfg, market.NewARPredictor(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	d := p.Decide(0, Quote{Buy: 100, Sell: 90})
	if d != (Decision{}) {
		t.Errorf("first decision = %+v, want zero", d)
	}
	// The decision at t must not depend on the current quote.
	q0 := Quote{Buy: 8, Sell: 7.2}
	p.Observe(0, 0.02, q0, d)
	d1a := p.Decide(1, Quote{Buy: 5, Sell: 4.5})
	d1b := p.Decide(1, Quote{Buy: 11, Sell: 9.9})
	if d1a != d1b {
		t.Error("decision depends on the current quote")
	}
}

// playTrader runs any trader over a series and returns cost and fit.
func playTrader(t *testing.T, tr Trader, emissions []float64, prices *market.Prices, cap float64) (float64, float64) {
	t.Helper()
	cost := 0.0
	decisions := make([]Decision, len(emissions))
	for slot := range emissions {
		q := Quote{Buy: prices.Buy[slot], Sell: prices.Sell[slot]}
		d := tr.Decide(slot, q)
		decisions[slot] = d
		cost += d.Cost(q)
		tr.Observe(slot, emissions[slot], q, d)
	}
	fit, err := Fit(emissions, decisions, cap)
	if err != nil {
		t.Fatal(err)
	}
	return cost, fit
}

func TestPredictiveHelpsOnAutocorrelatedPrices(t *testing.T) {
	// On a strongly mean-reverting (highly predictable) price series with a
	// structural deficit, prediction should not hurt: averaged over seeds
	// the predictive variant's cost stays at or below vanilla's, with
	// comparable fit.
	const (
		horizon = 2000
		cap     = 1000.0
	)
	var vanillaCost, predCost, vanillaFit, predFit float64
	const seeds = 5
	for seed := int64(0); seed < seeds; seed++ {
		rng := rand.New(rand.NewSource(100 + seed))
		priceCfg := market.DefaultPriceConfig()
		priceCfg.Reversion = 0.3 // strong pull toward the mid: predictable
		priceCfg.Volatility = 1.2
		prices, err := market.GeneratePrices(priceCfg, horizon, rng)
		if err != nil {
			t.Fatal(err)
		}
		emissions := make([]float64, horizon)
		for i := range emissions {
			emissions[i] = 1 + rng.Float64() // mean 1.5/slot vs cap 0.5/slot
		}
		cfg := DefaultPrimalDualConfig(cap, horizon)

		vanilla, err := NewPrimalDual(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, f := playTrader(t, vanilla, emissions, prices, cap)
		vanillaCost += c
		vanillaFit += f

		pred, err := NewPredictivePrimalDual(cfg, market.NewARPredictor(), market.DefaultSellRatio)
		if err != nil {
			t.Fatal(err)
		}
		c, f = playTrader(t, pred, emissions, prices, cap)
		predCost += c
		predFit += f
	}
	t.Logf("vanilla cost=%.1f fit=%.2f | predictive cost=%.1f fit=%.2f",
		vanillaCost/seeds, vanillaFit/seeds, predCost/seeds, predFit/seeds)
	if predCost > vanillaCost*1.02 {
		t.Errorf("predictive cost %v clearly above vanilla %v", predCost/seeds, vanillaCost/seeds)
	}
	if predFit > vanillaFit+0.05*cap*seeds {
		t.Errorf("predictive fit %v much worse than vanilla %v", predFit/seeds, vanillaFit/seeds)
	}
}

func TestPredictiveMatchesVanillaOnFlatPrices(t *testing.T) {
	// With constant prices the forecast equals the last price, so both
	// variants must produce identical decisions.
	const horizon = 200
	cfg := DefaultPrimalDualConfig(10, horizon)
	vanilla, err := NewPrimalDual(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred, err := NewPredictivePrimalDual(cfg, market.NewARPredictor(), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	q := Quote{Buy: 8, Sell: 7.2}
	for slot := 0; slot < horizon; slot++ {
		dv := vanilla.Decide(slot, q)
		dp := pred.Decide(slot, q)
		if math.Abs(dv.Buy-dp.Buy) > 1e-9 || math.Abs(dv.Sell-dp.Sell) > 1e-9 {
			t.Fatalf("slot %d: vanilla %+v != predictive %+v", slot, dv, dp)
		}
		vanilla.Observe(slot, 0.1, q, dv)
		pred.Observe(slot, 0.1, q, dp)
	}
}
