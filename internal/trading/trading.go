// Package trading implements the paper's carbon-allowance subproblem P2.
//
// The centerpiece is Algorithm 2 — an online primal-dual method on the
// convex–concave reformulation of P2. The primal step solves the proximal
// one-shot problem P2^t in closed form; the dual ascent step accumulates the
// realized constraint violation g^t into the multiplier. It needs no future
// (and not even current-slot) prices or emissions, and achieves O(T^{2/3})
// regret and fit (Theorem 2).
//
// The package also carries the paper's baselines — Random, Threshold, and
// Lyapunov drift-plus-penalty — plus the analytic one-shot and offline-
// horizon optima used for regret/fit accounting and the "Offline" scheme.
package trading

import (
	"fmt"
	"math"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// Quote is the carbon market's current buy price c^t and sell price r^t.
type Quote struct {
	Buy  float64 // c^t
	Sell float64 // r^t
}

// Decision is the pair (z^t, w^t): allowances bought and sold this slot.
type Decision struct {
	Buy  float64 // z^t >= 0
	Sell float64 // w^t >= 0
}

// Cost returns the slot's trading cost f^t(Z) = z*c - w*r.
func (d Decision) Cost(q Quote) float64 { return d.Buy*q.Buy - d.Sell*q.Sell }

// Trader is a sequential carbon-trading strategy. Each slot the simulator
// calls Decide once (the current quote is provided because some baselines
// use it; Algorithm 2 deliberately ignores it) and then Observe once with
// the slot's realized emission.
type Trader interface {
	// Name identifies the trader in reports.
	Name() string
	// Decide returns (z^t, w^t) for slot t (0-indexed).
	Decide(t int, q Quote) Decision
	// Observe reveals the slot's realized emission (kg CO2 to offset this
	// slot) after the decision, along with the quote and decision taken.
	Observe(t int, emission float64, q Quote, d Decision)
}

// ConstraintGap returns g^t(Z) = emission - R/T - z + w, the per-slot
// long-term-constraint term of the paper's P2.
func ConstraintGap(emission, capPerSlot float64, d Decision) float64 {
	return emission - capPerSlot - d.Buy + d.Sell
}

// OneShotOptimum returns the minimizer of f^t over {Z >= 0 : g^t(Z) <= 0}
// for one slot — the comparator sequence in Theorem 2's regret. Because
// selling earns r^t > 0, the constraint -z + w <= capPerSlot - emission is
// tight at the optimum: buy exactly the deficit or sell exactly the surplus.
func OneShotOptimum(emission, capPerSlot float64, q Quote) Decision {
	gap := emission - capPerSlot
	if gap > 0 {
		return Decision{Buy: gap}
	}
	return Decision{Sell: -gap}
}

// OfflineOptimum solves the full-horizon trading problem
//
//	min sum_t z^t c^t - w^t r^t   s.t.  sum_t emissions - R <= sum_t z - w
//
// under a no-speculation restriction: the operator trades to offset its own
// emissions, never to arbitrage the market (without this restriction the
// unbounded LP admits infinite profit whenever some slot's sell price
// exceeds another slot's buy price, which the paper's Offline clearly does
// not exploit). Among non-speculative plans the optimum buys the total
// deficit at the cheapest buy price or sells the total surplus at the
// dearest sell price. It returns the per-slot decisions and the optimal
// cost. See BoxedOfflineOptimum for the exact box-constrained LP including
// arbitrage.
func OfflineOptimum(emissions []float64, buy, sell []float64, initialCap float64) ([]Decision, float64, error) {
	if len(emissions) != len(buy) || len(buy) != len(sell) {
		return nil, 0, fmt.Errorf("trading: series lengths differ: %d/%d/%d", len(emissions), len(buy), len(sell))
	}
	if len(emissions) == 0 {
		return nil, 0, fmt.Errorf("trading: empty horizon")
	}
	for t := range buy {
		if sell[t] >= buy[t] {
			return nil, 0, fmt.Errorf("trading: sell price %g >= buy price %g at t=%d breaks the LP structure", sell[t], buy[t], t)
		}
	}
	total := 0.0
	for _, e := range emissions {
		total += e
	}
	decisions := make([]Decision, len(emissions))
	deficit := total - initialCap
	if deficit > 0 {
		tBest := numeric.ArgMin(buy)
		decisions[tBest] = Decision{Buy: deficit}
		return decisions, deficit * buy[tBest], nil
	}
	tBest := numeric.ArgMax(sell)
	decisions[tBest] = Decision{Sell: -deficit}
	return decisions, deficit * sell[tBest], nil
}

// Fit returns the paper's constraint-violation metric
// ||[sum_t g^t(Z^t)]^+|| for a realized run.
func Fit(emissions []float64, decisions []Decision, initialCap float64) (float64, error) {
	if len(emissions) != len(decisions) {
		return 0, fmt.Errorf("trading: series lengths differ: %d/%d", len(emissions), len(decisions))
	}
	horizon := float64(len(emissions))
	if horizon == 0 {
		return 0, nil
	}
	capPerSlot := initialCap / horizon
	sum := 0.0
	for t, e := range emissions {
		sum += ConstraintGap(e, capPerSlot, decisions[t])
	}
	return math.Max(0, sum), nil
}
