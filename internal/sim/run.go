package sim

import (
	"fmt"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// PolicyFactory builds the model-selection policy for one edge.
type PolicyFactory func(s *Scenario, edge int, rng *rand.Rand) (bandit.Policy, error)

// TraderFactory builds the carbon trader for a run.
type TraderFactory func(s *Scenario, rng *rand.Rand) (trading.Trader, error)

// Result captures everything a run produces.
type Result struct {
	Name string
	Cost metrics.CostBreakdown

	// CumTotal[t] is the cumulative total cost through slot t.
	CumTotal []float64
	// Emissions[t] is grams of CO2 emitted in slot t.
	Emissions []float64
	// Decisions[t] is the trade executed in slot t.
	Decisions []trading.Decision
	// WorkloadTotal[t] is sum_i M_i^t.
	WorkloadTotal []int
	// Accuracy[t] is the fraction of correct predictions in slot t.
	Accuracy []float64
	// OverallAccuracy aggregates over all samples.
	OverallAccuracy float64
	// Fit is the paper's constraint-violation metric.
	Fit float64
	// Switches counts model downloads across all edges (including each
	// edge's initial download).
	Switches int
	// Selections[i][n] counts slots edge i spent on model n.
	Selections [][]int
	// AvgBuyPrice is spend / allowances bought (0 if none bought).
	AvgBuyPrice float64
}

// Run plays one policy/trader combination through the scenario.
func Run(s *Scenario, name string, pf PolicyFactory, tf TraderFactory) (*Result, error) {
	cfg := s.Cfg
	policies := make([]bandit.Policy, cfg.Edges)
	for i := range policies {
		p, err := pf(s, i, numeric.SplitRNG(cfg.Seed, fmt.Sprintf("policy-%s-%d", name, i)))
		if err != nil {
			return nil, fmt.Errorf("policy for edge %d: %w", i, err)
		}
		policies[i] = p
	}
	trader, err := tf(s, numeric.SplitRNG(cfg.Seed, "trader-"+name))
	if err != nil {
		return nil, fmt.Errorf("trader: %w", err)
	}
	lossRNG := numeric.SplitRNG(cfg.Seed, "loss-"+name)
	meter, err := energy.NewMeter(cfg.EmissionRate)
	if err != nil {
		return nil, err
	}
	ledger, err := market.NewLedger(cfg.InitialCap)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Name:          name,
		CumTotal:      make([]float64, cfg.Horizon),
		Emissions:     make([]float64, cfg.Horizon),
		Decisions:     make([]trading.Decision, cfg.Horizon),
		WorkloadTotal: make([]int, cfg.Horizon),
		Accuracy:      make([]float64, cfg.Horizon),
		Selections:    make([][]int, cfg.Edges),
	}
	for i := range res.Selections {
		res.Selections[i] = make([]int, s.NumModels())
	}
	prevArm := make([]int, cfg.Edges)
	for i := range prevArm {
		prevArm[i] = -1
	}

	pool := s.Zoo.PoolSize()
	totalCorrect, totalSamples := 0, 0
	var batch []int
	for t := 0; t < cfg.Horizon; t++ {
		var slotCost metrics.CostBreakdown
		var slotEmission float64
		slotCorrect, slotSamples := 0, 0
		for i := 0; i < cfg.Edges; i++ {
			arm := policies[i].SelectArm()
			switched := arm != prevArm[i]
			prevArm[i] = arm
			res.Selections[i][arm]++
			info := s.Zoo.Info(arm)

			m := s.Workload[t][i]
			// Draw the slot's data-sample indices for this edge.
			if cap(batch) < m {
				batch = make([]int, m)
			}
			batch = batch[:m]
			for j := range batch {
				batch[j] = s.streamRNGs[i].Intn(pool)
			}
			avgLoss, correct := s.Zoo.BatchLoss(arm, batch, lossRNG)
			policies[i].Update(avgLoss + s.CompCost[i][arm])

			slotCorrect += correct
			slotSamples += m
			slotCost.InferLoss += s.Zoo.MeanLoss(arm)
			slotCost.Compute += s.CompCost[i][arm]
			if switched {
				slotCost.Switching += s.Delays[i]
				res.Switches++
				slotEmission += meter.RecordTransfer(
					energy.TransferEnergy(energy.TransferEnergyPerByte, info.SizeBytes))
			}
			slotEmission += meter.RecordInference(energy.InferenceEnergy(info.PhiKWh, m))
		}

		q := trading.Quote{Buy: s.Prices.Buy[t], Sell: s.Prices.Sell[t]}
		d := trader.Decide(t, q)
		if err := ledger.Buy(d.Buy, q.Buy); err != nil {
			return nil, err
		}
		if err := ledger.Sell(d.Sell, q.Sell); err != nil {
			return nil, err
		}
		trader.Observe(t, slotEmission, q, d)
		slotCost.Trading = d.Cost(q)

		res.Cost.Add(slotCost)
		res.CumTotal[t] = res.Cost.Total()
		res.Emissions[t] = slotEmission
		res.Decisions[t] = d
		res.WorkloadTotal[t] = slotSamples
		if slotSamples > 0 {
			res.Accuracy[t] = float64(slotCorrect) / float64(slotSamples)
		}
		totalCorrect += slotCorrect
		totalSamples += slotSamples
	}
	if totalSamples > 0 {
		res.OverallAccuracy = float64(totalCorrect) / float64(totalSamples)
	}
	fit, err := trading.Fit(res.Emissions, res.Decisions, cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	if ledger.Bought() > 0 {
		res.AvgBuyPrice = ledger.Spend() / ledger.Bought()
	}
	return res, nil
}

// NetBuySeries returns z^t - w^t for every slot.
func (r *Result) NetBuySeries() []float64 {
	out := make([]float64, len(r.Decisions))
	for t, d := range r.Decisions {
		out[t] = d.Buy - d.Sell
	}
	return out
}
