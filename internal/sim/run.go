package sim

import (
	"fmt"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// PolicyFactory builds the model-selection policy for one edge.
type PolicyFactory func(s *Scenario, edge int, rng *rand.Rand) (bandit.Policy, error)

// TraderFactory builds the carbon trader for a run.
type TraderFactory func(s *Scenario, rng *rand.Rand) (trading.Trader, error)

// Result is the shared engine's per-run record (re-exported so every
// existing caller keeps reading sim.Result).
type Result = engine.Result

// Run plays one policy/trader combination through the scenario on the
// shared slot engine, stepping edges in the canonical serial order.
func Run(s *Scenario, name string, pf PolicyFactory, tf TraderFactory) (*Result, error) {
	return RunWorkers(s, name, pf, tf, 1)
}

// RunWorkers is Run with edges stepping concurrently on up to workers
// goroutines within each slot. The result is bit-for-bit identical for
// every worker count (each edge owns its RNG streams and scratch buffers;
// cross-edge accounting is serialized in edge order by the engine), so
// workers is purely a throughput knob for large edge counts.
func RunWorkers(s *Scenario, name string, pf PolicyFactory, tf TraderFactory, workers int) (*Result, error) {
	return RunSharded(s, name, pf, tf, 1, workers)
}

// RunSharded is RunWorkers with the edges additionally split into `shards`
// contiguous engine shards, each stepping with its own pool of up to workers
// goroutines (see engine.Config.Shards). Like the worker count, the shard
// count never changes a bit of the Result — it is the throughput knob the
// 100k-edge runs use.
func RunSharded(s *Scenario, name string, pf PolicyFactory, tf TraderFactory, shards, workers int) (*Result, error) {
	cfg := s.Cfg
	policies := make([]bandit.Policy, cfg.Edges)
	for i := range policies {
		p, err := pf(s, i, numeric.SplitRNG(cfg.Seed, fmt.Sprintf("policy-%s-%d", name, i)))
		if err != nil {
			return nil, fmt.Errorf("policy for edge %d: %w", i, err)
		}
		policies[i] = p
	}
	trader, err := tf(s, numeric.SplitRNG(cfg.Seed, "trader-"+name))
	if err != nil {
		return nil, fmt.Errorf("trader: %w", err)
	}
	ctrl, err := core.NewWithComponents(core.Config{
		NumModels:     s.NumModels(),
		DownloadCosts: s.Delays,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		Seed:          cfg.Seed,
	}, policies, trader)
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	return engine.Run(engine.Config{
		Name:         name,
		Horizon:      cfg.Horizon,
		NumModels:    s.NumModels(),
		InitialCap:   cfg.InitialCap,
		EmissionRate: cfg.EmissionRate,
		Prices:       s.Prices,
		SwitchCosts:  s.Delays,
		Workers:      workers,
		Shards:       shards,
	}, ctrl, s.steppers(name))
}

// scenarioStepper serves one edge's slots against the materialized
// scenario. Every mutable resource — the edge's stream RNG, its loss RNG,
// and the batch scratch buffer — is private to the edge, so steppers of
// different edges run concurrently without coordination and the simulation
// stays deterministic for any worker count.
type scenarioStepper struct {
	s       *Scenario
	edge    int
	lossRNG *rand.Rand
	batch   []int
}

// steppers builds one stepper per edge for a named run. The loss RNG is
// split per edge (stream "loss-<name>-<i>") so that edge i's loss draws do
// not depend on how many samples other edges served before it.
func (s *Scenario) steppers(name string) []engine.EdgeStepper {
	out := make([]engine.EdgeStepper, s.Cfg.Edges)
	for i := range out {
		out[i] = &scenarioStepper{
			s:       s,
			edge:    i,
			lossRNG: numeric.SplitRNG(s.Cfg.Seed, fmt.Sprintf("loss-%s-%d", name, i)),
		}
	}
	return out
}

// Step implements engine.EdgeStepper.
func (st *scenarioStepper) Step(slot, arm int, _ bool) (engine.Observation, error) {
	s, i := st.s, st.edge
	m := s.Workload[slot][i]
	if cap(st.batch) < m {
		st.batch = make([]int, m) //lint:allow hotalloc grow-only batch buffer; steady state reuses capacity
	}
	st.batch = st.batch[:m]
	if s.streamPre != nil {
		pos := s.streamPos[i]
		copy(st.batch, s.streamPre[i][pos:pos+m])
		s.streamPos[i] = pos + m
	} else {
		pool := s.Zoo.PoolSize()
		for j := range st.batch {
			st.batch[j] = s.streamRNGs[i].Intn(pool)
		}
	}
	avgLoss, correct := s.Zoo.BatchLoss(arm, st.batch, st.lossRNG)
	info := s.Zoo.Info(arm)
	return engine.Observation{
		Loss:        avgLoss + s.CompCost[i][arm],
		InferLoss:   s.Zoo.MeanLoss(arm),
		Compute:     s.CompCost[i][arm],
		Correct:     correct,
		Samples:     m,
		InferKWh:    energy.InferenceEnergy(info.PhiKWh, m),
		TransferKWh: energy.TransferEnergy(energy.TransferEnergyPerByte, info.SizeBytes),
	}, nil
}
