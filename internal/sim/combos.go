package sim

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// The paper evaluates combinations of a model-selection scheme and a carbon
// trading scheme (Ran-Ran, Greedy-LY, TINF-Ran, UCB-TH, ...). The factories
// below materialize each named scheme against a scenario; Combos enumerates
// the cross product used in the figures.

// PolicyOurs is Algorithm 1 (BlockedTsallisINF) with u_i from the scenario.
func PolicyOurs(s *Scenario, edge int, rng *rand.Rand) (bandit.Policy, error) {
	return bandit.NewBlockedTsallisINF(s.NumModels(), s.Delays[edge], rng)
}

// PolicyRandom is the Random baseline.
func PolicyRandom(s *Scenario, _ int, rng *rand.Rand) (bandit.Policy, error) {
	return bandit.NewRandom(s.NumModels(), rng)
}

// PolicyGreedy is the lowest-energy Greedy baseline.
func PolicyGreedy(s *Scenario, _ int, _ *rand.Rand) (bandit.Policy, error) {
	scores := make([]float64, s.NumModels())
	for n := range scores {
		scores[n] = s.Zoo.Info(n).PhiKWh
	}
	return bandit.NewGreedy(scores)
}

// PolicyTsallisINF is unblocked Tsallis-INF (ignores switching cost).
func PolicyTsallisINF(s *Scenario, _ int, rng *rand.Rand) (bandit.Policy, error) {
	return bandit.NewTsallisINF(s.NumModels(), rng)
}

// PolicyUCB2 is the UCB2 baseline. Loss scale: worst mean loss plus worst
// compute cost, which upper-bounds per-slot observations loosely.
func PolicyUCB2(s *Scenario, edge int, _ *rand.Rand) (bandit.Policy, error) {
	scale := 0.0
	for n := 0; n < s.NumModels(); n++ {
		if v := s.Zoo.MeanLoss(n) + s.CompCost[edge][n]; v > scale {
			scale = v
		}
	}
	return bandit.NewUCB2(s.NumModels(), 0.5, scale*1.5+1e-9)
}

// PolicyEXP3 is the classical adversarial bandit (not in the paper's
// line-up; used by ablations).
func PolicyEXP3(s *Scenario, edge int, rng *rand.Rand) (bandit.Policy, error) {
	scale := 0.0
	for n := 0; n < s.NumModels(); n++ {
		if v := s.Zoo.MeanLoss(n) + s.CompCost[edge][n]; v > scale {
			scale = v
		}
	}
	return bandit.NewEXP3(s.NumModels(), 0.1, scale*1.5+1e-9, rng)
}

// PolicyEpsilonGreedy is the simplest stochastic baseline (ablations only).
func PolicyEpsilonGreedy(s *Scenario, _ int, rng *rand.Rand) (bandit.Policy, error) {
	return bandit.NewEpsilonGreedy(s.NumModels(), 0.05, rng)
}

// PolicyOffline pins each edge to its hindsight-best model.
func PolicyOffline(s *Scenario, edge int, _ *rand.Rand) (bandit.Policy, error) {
	return bandit.NewFixed(s.BestArm(edge), s.NumModels())
}

// primalDualConfig assembles Algorithm 2's configuration for a scenario:
// Theorem-2 T^{-1/3} step sizes scaled by the per-slot emission magnitude
// and the average price level, optionally multiplied by gammaMult (the
// step-size ablation knob).
func primalDualConfig(s *Scenario, gammaMult float64) trading.PrimalDualConfig {
	cfg := trading.DefaultPrimalDualConfig(s.Cfg.InitialCap, s.Cfg.Horizon)
	scale := s.MeanEmissionPerSlot()
	if scale <= 0 {
		scale = 1
	}
	tCube := 1.0 / math.Cbrt(float64(s.Cfg.Horizon))
	// Dual step converts grams of violation into price units; primal step
	// converts price units into trade volume.
	avgPrice := 0.0
	for _, c := range s.Prices.Buy {
		avgPrice += c
	}
	avgPrice /= float64(len(s.Prices.Buy))
	cfg.Gamma1 = 4 * tCube * avgPrice / scale * gammaMult
	cfg.Gamma2 = 4 * tCube * scale / avgPrice * gammaMult
	cfg.ZMax = 20 * scale
	return cfg
}

// TraderOurs is Algorithm 2 (PrimalDual) with Theorem-2 step sizes scaled by
// the scenario's per-slot emission magnitude.
func TraderOurs(s *Scenario, _ *rand.Rand) (trading.Trader, error) {
	return trading.NewPrimalDual(primalDualConfig(s, 1))
}

// TraderOursScaled returns Algorithm 2 with both step sizes multiplied by
// gammaMult — the step-size sensitivity ablation.
func TraderOursScaled(gammaMult float64) TraderFactory {
	return func(s *Scenario, _ *rand.Rand) (trading.Trader, error) {
		return trading.NewPrimalDual(primalDualConfig(s, gammaMult))
	}
}

// TraderPredictive is the future-work extension: Algorithm 2 driven by an
// online AR(1) price forecast instead of the last observed price.
func TraderPredictive(s *Scenario, _ *rand.Rand) (trading.Trader, error) {
	ratio := market.DefaultSellRatio
	if s.Cfg.Prices.SellRatio > 0 && s.Cfg.Prices.SellRatio < 1 {
		ratio = s.Cfg.Prices.SellRatio
	}
	return trading.NewPredictivePrimalDual(primalDualConfig(s, 1), market.NewARPredictor(), ratio)
}

// TraderRandom trades random volumes up to four times the per-slot emission
// scale — uninformed trading churns far more volume than the workload
// warrants, which is exactly the waste the paper attributes to the "-Ran"
// combinations.
func TraderRandom(s *Scenario, rng *rand.Rand) (trading.Trader, error) {
	scale := s.MeanEmissionPerSlot()
	if scale <= 0 {
		scale = 1
	}
	return trading.NewRandomTrader(4*scale, rng)
}

// TraderThreshold buys below / sells above the band midpoints at the
// emission scale.
func TraderThreshold(s *Scenario, _ *rand.Rand) (trading.Trader, error) {
	scale := s.MeanEmissionPerSlot()
	if scale <= 0 {
		scale = 1
	}
	lo, hi := s.Prices.Buy[0], s.Prices.Buy[0]
	for _, c := range s.Prices.Buy {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	mid := (lo + hi) / 2
	return trading.NewThresholdTrader(mid, scale, mid*0.9, scale)
}

// TraderLyapunov is the drift-plus-penalty baseline.
func TraderLyapunov(s *Scenario, _ *rand.Rand) (trading.Trader, error) {
	scale := s.MeanEmissionPerSlot()
	if scale <= 0 {
		scale = 1
	}
	avgPrice := 0.0
	for _, c := range s.Prices.Buy {
		avgPrice += c
	}
	avgPrice /= float64(len(s.Prices.Buy))
	// V balances cost against queue pressure: queue is in grams, V*price
	// must be reachable by a few slots of uncovered emissions.
	v := scale / avgPrice * 3
	return trading.NewLyapunovTrader(v, 2*scale, s.Cfg.InitialCap, s.Cfg.Horizon)
}

// Combo names one policy x trader pairing using the paper's labels.
type Combo struct {
	Name    string
	Policy  PolicyFactory
	Trader  TraderFactory
	IsOurs  bool
	PolicyL string // policy label (for grouping)
	TraderL string // trader label
}

// Combos returns the paper's evaluated combinations. ours selects whether
// the full "Ours" (Alg 1 + Alg 2) entry is included.
func Combos() []Combo {
	type p struct {
		label   string
		factory PolicyFactory
	}
	type tr struct {
		label   string
		factory TraderFactory
	}
	ps := []p{
		{"Ran", PolicyRandom},
		{"Greedy", PolicyGreedy},
		{"TINF", PolicyTsallisINF},
		{"UCB", PolicyUCB2},
	}
	trs := []tr{
		{"Ran", TraderRandom},
		{"TH", TraderThreshold},
		{"LY", TraderLyapunov},
	}
	combos := []Combo{{
		Name:    "Ours",
		Policy:  PolicyOurs,
		Trader:  TraderOurs,
		IsOurs:  true,
		PolicyL: "Ours",
		TraderL: "Ours",
	}}
	for _, pp := range ps {
		for _, tt := range trs {
			combos = append(combos, Combo{
				Name:    fmt.Sprintf("%s-%s", pp.label, tt.label),
				Policy:  pp.factory,
				Trader:  tt.factory,
				PolicyL: pp.label,
				TraderL: tt.label,
			})
		}
	}
	return combos
}

// ComboByName finds a combo (including "Ours" and "Offline" is excluded; use
// Offline() for the clairvoyant scheme).
func ComboByName(name string) (Combo, error) {
	for _, c := range Combos() {
		if c.Name == name {
			return c, nil
		}
	}
	return Combo{}, fmt.Errorf("sim: unknown combo %q", name)
}
