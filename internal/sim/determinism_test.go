package sim

import (
	"reflect"
	"runtime"
	"testing"
)

// TestRunWorkersDeterministic is the parallel-stepping regression test: the
// same seed must produce the identical Result — cost series, selections,
// fit, accuracy, everything — for workers=1 (canonical serial order),
// workers=4, and workers=GOMAXPROCS. Scenarios are rebuilt per run because
// the per-edge stream RNGs are stateful.
func TestRunWorkersDeterministic(t *testing.T) {
	const edges, horizon, seed = 6, 80, 11
	runWith := func(workers int) *Result {
		s := testScenario(t, edges, horizon, seed)
		res, err := RunWorkers(s, "Ours", PolicyOurs, TraderOurs, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res
	}
	serial := runWith(1)
	for _, workers := range []int{4, runtime.GOMAXPROCS(0)} {
		got := runWith(workers)
		if !reflect.DeepEqual(serial.CumTotal, got.CumTotal) {
			t.Errorf("workers=%d: cost series diverged from serial", workers)
		}
		if !reflect.DeepEqual(serial.Selections, got.Selections) {
			t.Errorf("workers=%d: selections diverged from serial", workers)
		}
		if serial.Fit != got.Fit {
			t.Errorf("workers=%d: fit %v != %v", workers, got.Fit, serial.Fit)
		}
		if serial.OverallAccuracy != got.OverallAccuracy {
			t.Errorf("workers=%d: accuracy %v != %v", workers, got.OverallAccuracy, serial.OverallAccuracy)
		}
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d: full Result diverged from serial", workers)
		}
	}
	// Run is the workers=1 engine: it must reproduce the canonical order.
	s := testScenario(t, edges, horizon, seed)
	viaRun, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, viaRun) {
		t.Error("Run diverged from RunWorkers(..., 1)")
	}
}

// TestRunShardedDeterministic extends the regression to the shard dimension:
// every shard×worker decomposition must reproduce the canonical serial
// Result bit for bit (this is the sim-level face of the engine's SlotDelta
// reduction; carbonsim -shards rides this path).
func TestRunShardedDeterministic(t *testing.T) {
	const edges, horizon, seed = 6, 80, 11
	runWith := func(shards, workers int) *Result {
		s := testScenario(t, edges, horizon, seed)
		res, err := RunSharded(s, "Ours", PolicyOurs, TraderOurs, shards, workers)
		if err != nil {
			t.Fatalf("shards=%d workers=%d: %v", shards, workers, err)
		}
		return res
	}
	serial := runWith(1, 1)
	for _, shards := range []int{2, 3, edges, edges + 5} {
		for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			if got := runWith(shards, workers); !reflect.DeepEqual(serial, got) {
				t.Errorf("shards=%d workers=%d: Result diverged from serial", shards, workers)
			}
		}
	}
	// RunWorkers is the shards=1 path: it must reproduce the canonical order.
	s := testScenario(t, edges, horizon, seed)
	viaWorkers, err := RunWorkers(s, "Ours", PolicyOurs, TraderOurs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, viaWorkers) {
		t.Error("RunWorkers diverged from RunSharded(..., 1, 1)")
	}
}

// TestOfflineDeterministic pins the clairvoyant scheme's determinism on the
// rebased engine path.
func TestOfflineDeterministic(t *testing.T) {
	r1, err := Offline(testScenario(t, 4, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Offline(testScenario(t, 4, 60, 12))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("Offline is not deterministic for a fixed seed")
	}
}
