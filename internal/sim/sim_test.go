package sim

import (
	"math"
	"testing"

	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// testScenario builds a small surrogate-backed scenario.
func testScenario(t testing.TB, edges, horizon int, seed int64) *Scenario {
	t.Helper()
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(seed, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(edges)
	cfg.Horizon = horizon
	cfg.Seed = seed
	s, err := NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewScenarioErrors(t *testing.T) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(1, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(0)
	if _, err := NewScenario(bad, zoo); err == nil {
		t.Error("expected error for zero edges")
	}
	cfg := DefaultConfig(3)
	cfg.Horizon = 0
	if _, err := NewScenario(cfg, zoo); err == nil {
		t.Error("expected error for zero horizon")
	}
	cfg = DefaultConfig(3)
	cfg.PriceScale = 0
	if _, err := NewScenario(cfg, zoo); err == nil {
		t.Error("expected error for zero price scale")
	}
	cfg = DefaultConfig(3)
	if _, err := NewScenario(cfg, nil); err == nil {
		t.Error("expected error for nil zoo")
	}
	cfg = DefaultConfig(3)
	cfg.InitialCap = -1
	if _, err := NewScenario(cfg, zoo); err == nil {
		t.Error("expected error for negative cap")
	}
	cfg = DefaultConfig(3)
	cfg.SwitchWeight = -1
	if _, err := NewScenario(cfg, zoo); err == nil {
		t.Error("expected error for negative switch weight")
	}
}

func TestNewScenarioWithTraces(t *testing.T) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(1, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Horizon = 3
	wl := [][]int{{5, 6}, {7, 8}, {9, 10}}
	s, err := NewScenarioWithTraces(cfg, zoo, wl, nil)
	if err != nil {
		t.Fatalf("NewScenarioWithTraces: %v", err)
	}
	for tt := range wl {
		for i := range wl[tt] {
			if s.Workload[tt][i] != wl[tt][i] {
				t.Fatal("workload trace not honored")
			}
		}
	}
	// Dimension mismatches are rejected.
	if _, err := NewScenarioWithTraces(cfg, zoo, [][]int{{1, 2}}, nil); err == nil {
		t.Error("expected error for short workload trace")
	}
	if _, err := NewScenarioWithTraces(cfg, zoo, [][]int{{1}, {2}, {3}}, nil); err == nil {
		t.Error("expected error for wrong edge count")
	}
	badPrices := &market.Prices{Buy: []float64{8}, Sell: []float64{7}}
	if _, err := NewScenarioWithTraces(cfg, zoo, nil, badPrices); err == nil {
		t.Error("expected error for short price trace")
	}
	// A matching price trace is used verbatim (no PriceScale applied).
	goodPrices := &market.Prices{Buy: []float64{8, 9, 10}, Sell: []float64{7.2, 8.1, 9}}
	cfg.PriceScale = 100
	s, err = NewScenarioWithTraces(cfg, zoo, nil, goodPrices)
	if err != nil {
		t.Fatal(err)
	}
	if s.Prices.Buy[0] != 8 {
		t.Errorf("price trace rescaled: %v", s.Prices.Buy[0])
	}
}

func TestScenarioShapes(t *testing.T) {
	s := testScenario(t, 5, 80, 2)
	if len(s.Delays) != 5 || len(s.CompCost) != 5 {
		t.Fatal("per-edge slices wrong length")
	}
	if len(s.Workload) != 80 {
		t.Fatalf("workload horizon = %d", len(s.Workload))
	}
	if s.Prices.Horizon() != 80 {
		t.Fatalf("price horizon = %d", s.Prices.Horizon())
	}
	for i := range s.CompCost {
		if len(s.CompCost[i]) != s.NumModels() {
			t.Fatal("CompCost row wrong length")
		}
		for _, v := range s.CompCost[i] {
			if v <= 0 {
				t.Fatal("non-positive computation cost")
			}
		}
	}
	if s.MeanEmissionPerSlot() <= 0 {
		t.Error("MeanEmissionPerSlot must be positive")
	}
	best := s.BestArm(0)
	if best < 0 || best >= s.NumModels() {
		t.Errorf("BestArm = %d", best)
	}
}

func TestRunProducesConsistentResult(t *testing.T) {
	s := testScenario(t, 5, 80, 3)
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(res.CumTotal) != 80 || len(res.Emissions) != 80 || len(res.Decisions) != 80 {
		t.Fatal("series lengths wrong")
	}
	// Cumulative cost is consistent with the breakdown.
	if math.Abs(res.CumTotal[79]-res.Cost.Total()) > 1e-9 {
		t.Errorf("CumTotal end %v != Cost.Total %v", res.CumTotal[79], res.Cost.Total())
	}
	// Each edge was always running exactly one model.
	for i, row := range res.Selections {
		total := 0
		for _, c := range row {
			total += c
		}
		if total != 80 {
			t.Errorf("edge %d selections sum to %d", i, total)
		}
	}
	// Emissions are positive whenever there is workload.
	for tt, e := range res.Emissions {
		if res.WorkloadTotal[tt] > 0 && e <= 0 {
			t.Errorf("slot %d: workload %d but emission %v", tt, res.WorkloadTotal[tt], e)
		}
	}
	if res.OverallAccuracy <= 0 || res.OverallAccuracy > 1 {
		t.Errorf("OverallAccuracy = %v", res.OverallAccuracy)
	}
	if res.Switches < 5 {
		t.Errorf("Switches = %d, want at least one initial download per edge", res.Switches)
	}
}

func TestRunDeterministic(t *testing.T) {
	s1 := testScenario(t, 4, 60, 4)
	s2 := testScenario(t, 4, 60, 4)
	r1, err := Run(s1, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(s2, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost.Total() != r2.Cost.Total() {
		t.Errorf("same seed, different totals: %v vs %v", r1.Cost.Total(), r2.Cost.Total())
	}
	if r1.Fit != r2.Fit {
		t.Errorf("same seed, different fits")
	}
}

func TestAllCombosRun(t *testing.T) {
	s := testScenario(t, 4, 60, 5)
	seen := make(map[string]bool)
	for _, combo := range Combos() {
		res, err := Run(s, combo.Name, combo.Policy, combo.Trader)
		if err != nil {
			t.Fatalf("combo %s: %v", combo.Name, err)
		}
		if seen[combo.Name] {
			t.Fatalf("duplicate combo name %s", combo.Name)
		}
		seen[combo.Name] = true
		if math.IsNaN(res.Cost.Total()) || math.IsInf(res.Cost.Total(), 0) {
			t.Fatalf("combo %s produced non-finite cost", combo.Name)
		}
	}
	if len(seen) != 13 { // Ours + 4 policies x 3 traders
		t.Errorf("got %d combos, want 13", len(seen))
	}
	if _, err := ComboByName("Ours"); err != nil {
		t.Error(err)
	}
	if _, err := ComboByName("nope"); err == nil {
		t.Error("expected error for unknown combo")
	}
}

func TestOfflineScheme(t *testing.T) {
	s := testScenario(t, 5, 80, 6)
	off, err := Offline(s)
	if err != nil {
		t.Fatalf("Offline: %v", err)
	}
	// Offline switches exactly once per edge.
	if off.Switches != 5 {
		t.Errorf("Offline switches = %d, want 5", off.Switches)
	}
	// Offline satisfies the long-term constraint exactly.
	if off.Fit > 1e-9 {
		t.Errorf("Offline fit = %v", off.Fit)
	}
	// Offline selections are pure per edge.
	for i, row := range off.Selections {
		nonzero := 0
		for _, c := range row {
			if c > 0 {
				nonzero++
			}
		}
		if nonzero != 1 {
			t.Errorf("edge %d used %d models", i, nonzero)
		}
	}
}

func TestOursBeatsBaselinesAndApproachesOffline(t *testing.T) {
	// The paper's headline (Figs. 3-4): Ours has the lowest total cost
	// among online schemes and is closest to Offline. Averaged over seeds
	// to wash out run noise.
	combosToBeat := []string{"Ran-Ran", "Ran-LY", "Greedy-Ran", "TINF-Ran", "UCB-Ran", "UCB-LY"}
	totals := make(map[string]float64)
	var offTotal, oursTotal float64
	const seeds = 3
	for seed := int64(10); seed < 10+seeds; seed++ {
		s := testScenario(t, 5, 160, seed)
		off, err := Offline(s)
		if err != nil {
			t.Fatal(err)
		}
		offTotal += off.Cost.Total()
		ours, err := Run(s, "Ours", PolicyOurs, TraderOurs)
		if err != nil {
			t.Fatal(err)
		}
		oursTotal += ours.Cost.Total()
		for _, name := range combosToBeat {
			combo, err := ComboByName(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(s, combo.Name, combo.Policy, combo.Trader)
			if err != nil {
				t.Fatal(err)
			}
			totals[name] += res.Cost.Total()
		}
	}
	t.Logf("Offline total: %.2f", offTotal/seeds)
	t.Logf("Ours    total: %.2f", oursTotal/seeds)
	for name, total := range totals {
		t.Logf("%-10s total: %.2f", name, total/seeds)
		if oursTotal >= total {
			t.Errorf("Ours (%.2f) did not beat %s (%.2f)", oursTotal/seeds, name, total/seeds)
		}
	}
	if oursTotal < offTotal {
		t.Logf("note: Ours beat Offline (possible under transient constraint violations)")
	}
	// Ours tracks Offline within a factor of two at the paper's short
	// horizon (T=160 leaves real exploration cost on the table; the gap
	// closes as T grows, which TestRegretSublinear in the bench harness
	// verifies).
	if oursTotal > offTotal*2.0 {
		t.Errorf("Ours (%.2f) is not close to Offline (%.2f)", oursTotal/seeds, offTotal/seeds)
	}
}

func TestRegretP0(t *testing.T) {
	s := testScenario(t, 4, 80, 7)
	off, err := Offline(s)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	reg := RegretP0(ours, off)
	if math.IsNaN(reg) {
		t.Fatal("NaN regret")
	}
	if got := ours.Cost.Total() - off.Cost.Total(); math.Abs(reg-got) > 1e-12 {
		t.Errorf("RegretP0 = %v, want %v", reg, got)
	}
}

func TestNetBuySeries(t *testing.T) {
	s := testScenario(t, 3, 40, 8)
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatal(err)
	}
	nb := res.NetBuySeries()
	if len(nb) != 40 {
		t.Fatalf("len = %d", len(nb))
	}
	for t2, v := range nb {
		want := res.Decisions[t2].Buy - res.Decisions[t2].Sell
		if v != want {
			t.Fatalf("net buy mismatch at %d", t2)
		}
	}
}
