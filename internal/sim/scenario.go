// Package sim is the discrete-time simulation engine that wires every
// substrate together — topology, workload, carbon market, model zoo — and
// drives any combination of model-selection policy and carbon trader through
// the paper's per-slot protocol (Fig. 2 plus allowance trading), recording
// the cost breakdown, emissions, accuracy, and constraint violation needed
// to regenerate the paper's figures.
package sim

import (
	"fmt"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/topology"
	"github.com/carbonedge/carbonedge/internal/workload"
)

// Config parameterizes one scenario.
type Config struct {
	// Edges is the number of edge sites I; Horizon is the number of time
	// slots T (the paper: 10-50 edges, 160 slots of 15 minutes).
	Edges   int
	Horizon int
	// Seed drives every random stream.
	Seed int64
	// InitialCap is the pre-allocated allowance cap R, in grams of CO2.
	InitialCap float64
	// EmissionRate is rho in grams CO2 per kWh (paper: 500 g/kWh).
	EmissionRate float64
	// SwitchWeight scales the per-edge download cost u_i in both the cost
	// accounting and the algorithms' inputs (the Fig. 5 sweep).
	SwitchWeight float64
	// PriceScale multiplies the generated allowance prices, converting the
	// paper's cent/kg quotes into cost units per gram at a magnitude where
	// the trading term is visible next to the inference terms.
	PriceScale float64
	// MeanPeakWorkload is the average peak samples-per-slot per edge;
	// WorkloadSpread the busiest/quietest ratio.
	MeanPeakWorkload float64
	WorkloadSpread   float64
	// Price and topology configuration; zero values take defaults.
	Prices market.PriceConfig
	Topo   topology.Config
}

// DefaultConfig mirrors the paper's default setting at a laptop-friendly
// workload scale.
func DefaultConfig(edges int) Config {
	return Config{
		Edges:            edges,
		Horizon:          160,
		Seed:             1,
		InitialCap:       3,
		EmissionRate:     500,
		SwitchWeight:     1,
		PriceScale:       1,
		MeanPeakWorkload: 200,
		WorkloadSpread:   5,
		Prices:           market.DefaultPriceConfig(),
		Topo:             topology.DefaultConfig(edges),
	}
}

// Scenario is a fully materialized input instance: everything random is
// pre-drawn so that every policy/trader combination faces the identical
// workload, prices, topology, and model zoo.
type Scenario struct {
	Cfg Config
	Zoo models.Zoo

	// Delays holds the (switch-weight-scaled) download costs u_i.
	Delays []float64
	// CompCost[i][n] is v_{i,n}: the posterior computation cost of model n
	// on edge i (base latency x per-edge speed factor).
	CompCost [][]float64
	// Workload[t][i] is M_i^t.
	Workload [][]int
	// Prices holds c^t and r^t (already scaled by PriceScale).
	Prices *market.Prices
	// Streams[i] samples data indices for edge i.
	streamRNGs []*rand.Rand

	// streamPre/streamPos implement pre-drawn stream windows (ComboViews):
	// when streamPre is non-nil, edge i's stream draws come from
	// streamPre[i] at cursor streamPos[i] instead of streamRNGs. Different
	// edges touch disjoint cursor elements, so the per-edge parallel engine
	// needs no extra coordination.
	streamPre [][]int
	streamPos []int
}

// NewScenario materializes a scenario over a prebuilt model zoo (zoos are
// expensive to train, so callers share them across scenarios).
func NewScenario(cfg Config, zoo models.Zoo) (*Scenario, error) {
	return NewScenarioWithTraces(cfg, zoo, nil, nil)
}

// NewScenarioWithTraces materializes a scenario with caller-provided
// workload and/or price traces (e.g. loaded from CSV via internal/trace)
// instead of the synthetic generators. A nil trace falls back to the
// generator. Trace dimensions must match cfg (Horizon slots; Edges columns
// for the workload); prices are used as-is, NOT rescaled by PriceScale.
func NewScenarioWithTraces(cfg Config, zoo models.Zoo, workloadTrace [][]int, priceTrace *market.Prices) (*Scenario, error) {
	if cfg.Edges <= 0 || cfg.Horizon <= 0 {
		return nil, fmt.Errorf("sim: need positive edges/horizon, got %d/%d", cfg.Edges, cfg.Horizon)
	}
	if cfg.InitialCap < 0 || cfg.EmissionRate < 0 {
		return nil, fmt.Errorf("sim: negative cap or emission rate")
	}
	if cfg.SwitchWeight < 0 {
		return nil, fmt.Errorf("sim: negative switch weight")
	}
	if cfg.PriceScale <= 0 {
		return nil, fmt.Errorf("sim: PriceScale must be positive")
	}
	if zoo == nil {
		return nil, fmt.Errorf("sim: nil zoo")
	}
	if cfg.Prices == (market.PriceConfig{}) {
		cfg.Prices = market.DefaultPriceConfig()
	}
	if cfg.Topo == (topology.Config{}) {
		cfg.Topo = topology.DefaultConfig(cfg.Edges)
	}
	cfg.Topo.Edges = cfg.Edges

	topo, err := topology.Generate(cfg.Topo, numeric.SplitRNG(cfg.Seed, "topology"))
	if err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}

	wlSeries := workloadTrace
	if wlSeries == nil {
		wl, err := workload.NewGenerator(workload.Config{
			Edges:    cfg.Edges,
			MeanPeak: cfg.MeanPeakWorkload,
			Spread:   cfg.WorkloadSpread,
		}, numeric.SplitRNG(cfg.Seed, "workload"))
		if err != nil {
			return nil, fmt.Errorf("workload: %w", err)
		}
		wlSeries = wl.Series(cfg.Horizon)
	} else {
		if len(wlSeries) != cfg.Horizon {
			return nil, fmt.Errorf("sim: workload trace has %d slots, config wants %d", len(wlSeries), cfg.Horizon)
		}
		for t, row := range wlSeries {
			if len(row) != cfg.Edges {
				return nil, fmt.Errorf("sim: workload trace slot %d has %d edges, config wants %d", t, len(row), cfg.Edges)
			}
		}
	}

	prices := priceTrace
	if prices == nil {
		prices, err = market.GeneratePrices(cfg.Prices, cfg.Horizon, numeric.SplitRNG(cfg.Seed, "market"))
		if err != nil {
			return nil, fmt.Errorf("market: %w", err)
		}
		for t := range prices.Buy {
			prices.Buy[t] *= cfg.PriceScale
			prices.Sell[t] *= cfg.PriceScale
		}
	} else if prices.Horizon() != cfg.Horizon {
		return nil, fmt.Errorf("sim: price trace has %d slots, config wants %d", prices.Horizon(), cfg.Horizon)
	}

	s := &Scenario{
		Cfg:      cfg,
		Zoo:      zoo,
		Delays:   make([]float64, cfg.Edges),
		CompCost: make([][]float64, cfg.Edges),
		Workload: wlSeries,
		Prices:   prices,
	}
	speedRNG := numeric.SplitRNG(cfg.Seed, "edge-speed")
	for i := 0; i < cfg.Edges; i++ {
		s.Delays[i] = topo.Delay(i) * cfg.SwitchWeight
		speed := 0.8 + 0.45*speedRNG.Float64() // heterogeneous edge hardware
		s.CompCost[i] = make([]float64, zoo.NumModels())
		for n := 0; n < zoo.NumModels(); n++ {
			s.CompCost[i][n] = zoo.Info(n).BaseLatencySec * speed
		}
	}
	s.streamRNGs = make([]*rand.Rand, cfg.Edges)
	for i := range s.streamRNGs {
		s.streamRNGs[i] = numeric.SplitRNG(cfg.Seed, fmt.Sprintf("stream-%d", i))
	}
	return s, nil
}

// ComboViews splits the scenario into k views that can each play exactly
// one policy/trader combination (one Run/RunWorkers or one Offline call),
// concurrently if desired, with stream draws bit-identical to running the
// k combos sequentially on the receiver.
//
// Why this is sound: every combo steps every edge in every slot, so one
// combo consumes exactly D_i = sum_t Workload[t][i] draws from edge i's
// stream RNG — regardless of which models the combo picks. Sequential
// combos therefore see consecutive D_i-sized windows of the stream.
// ComboViews pre-draws k*D_i values per edge (advancing the receiver's
// RNGs just as k sequential combos would) and hands view j the j-th
// window. Views share the scenario's immutable inputs (zoo, workload,
// prices, costs); each owns only its windows and cursors.
//
// A view must play at most one combo: a second run on the same view would
// read past its window and panic. The receiver's own RNGs remain usable
// afterwards and continue where the k windows ended.
func (s *Scenario) ComboViews(k int) []*Scenario {
	if k <= 0 {
		return nil
	}
	pool := s.Zoo.PoolSize()
	draws := make([][]int, s.Cfg.Edges)
	perCombo := make([]int, s.Cfg.Edges)
	for i := 0; i < s.Cfg.Edges; i++ {
		d := 0
		for t := range s.Workload {
			d += s.Workload[t][i]
		}
		perCombo[i] = d
		buf := make([]int, k*d)
		if s.streamPre != nil {
			// Views of a view: carve the parent's remaining window.
			pos := s.streamPos[i]
			copy(buf, s.streamPre[i][pos:pos+k*d])
			s.streamPos[i] = pos + k*d
		} else {
			for j := range buf {
				buf[j] = s.streamRNGs[i].Intn(pool)
			}
		}
		draws[i] = buf
	}
	views := make([]*Scenario, k)
	for v := 0; v < k; v++ {
		clone := *s
		clone.streamPre = make([][]int, s.Cfg.Edges)
		clone.streamPos = make([]int, s.Cfg.Edges)
		for i := range clone.streamPre {
			d := perCombo[i]
			clone.streamPre[i] = draws[i][v*d : (v+1)*d]
		}
		views[v] = &clone
	}
	return views
}

// NumModels returns the zoo size N.
func (s *Scenario) NumModels() int { return s.Zoo.NumModels() }

// MeanEmissionPerSlot estimates the average per-slot emission (grams) under
// a mid-quality model, used to scale trader step sizes.
func (s *Scenario) MeanEmissionPerSlot() float64 {
	totalSamples := 0
	for _, row := range s.Workload {
		for _, m := range row {
			totalSamples += m
		}
	}
	avgPhi := 0.0
	for n := 0; n < s.Zoo.NumModels(); n++ {
		avgPhi += s.Zoo.Info(n).PhiKWh
	}
	avgPhi /= float64(s.Zoo.NumModels())
	kwh := avgPhi * float64(totalSamples)
	return kwh * s.Cfg.EmissionRate / float64(s.Cfg.Horizon)
}

// BestArm returns the hindsight-optimal model for edge i:
// argmin_n E[l_n] + v_{i,n}.
func (s *Scenario) BestArm(i int) int {
	best, bestVal := 0, s.Zoo.MeanLoss(0)+s.CompCost[i][0]
	for n := 1; n < s.Zoo.NumModels(); n++ {
		if v := s.Zoo.MeanLoss(n) + s.CompCost[i][n]; v < bestVal {
			best, bestVal = n, v
		}
	}
	return best
}
