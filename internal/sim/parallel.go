package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// SeedRun describes one independent replication: a config (whose Seed field
// is authoritative) plus the combo to play. Zoo construction is delegated to
// a factory so surrogate zoos can be rebuilt per seed while expensive
// trained zoos are shared.
type SeedRun struct {
	Cfg   Config
	Combo Combo
}

// RunSeeds executes independent replications concurrently on up to workers
// goroutines (default: GOMAXPROCS) and returns results aligned with the
// input order. The zoo factory is called once per replication from worker
// goroutines, so it must be safe for concurrent use (both zoo constructors
// in internal/models are, as long as each call gets its own RNG).
// A failing replication cancels nothing else; the first error encountered
// (in input order) is returned.
func RunSeeds(runs []SeedRun, zooFor func(Config) (*Scenario, error), workers int) ([]*Result, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("sim: no runs")
	}
	if zooFor == nil {
		return nil, fmt.Errorf("sim: nil scenario factory")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(runs) {
		workers = len(runs)
	}

	results := make([]*Result, len(runs))
	errs := make([]error, len(runs))
	jobs := make(chan int)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range jobs {
				r := runs[idx]
				scenario, err := zooFor(r.Cfg)
				if err != nil {
					errs[idx] = fmt.Errorf("scenario for run %d: %w", idx, err)
					continue
				}
				var res *Result
				if r.Combo.Name == "Offline" {
					res, err = Offline(scenario)
				} else {
					res, err = Run(scenario, r.Combo.Name, r.Combo.Policy, r.Combo.Trader)
				}
				if err != nil {
					errs[idx] = fmt.Errorf("run %d (%s): %w", idx, r.Combo.Name, err)
					continue
				}
				results[idx] = res
			}
		}()
	}
	for i := range runs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// OfflineCombo is the sentinel combo accepted by RunSeeds for the
// clairvoyant scheme.
func OfflineCombo() Combo { return Combo{Name: "Offline"} }
