package sim

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// benchScenario builds a heavier-than-default workload so per-edge slot work
// dominates the per-slot synchronization cost.
func benchScenario(b *testing.B, edges int) *Scenario {
	b.Helper()
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(1, "zoo"))
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultConfig(edges)
	cfg.Horizon = 160
	cfg.MeanPeakWorkload = 2000
	s, err := NewScenario(cfg, zoo)
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkSlotStepParallel measures the shared engine's per-edge parallel
// stepping against the canonical serial order at the paper's Fig. 4 edge
// scales. Scenario construction is excluded from the timing; scenarios are
// rebuilt per iteration because the stream RNGs are stateful.
func BenchmarkSlotStepParallel(b *testing.B) {
	for _, edges := range []int{10, 50} {
		for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
			b.Run(fmt.Sprintf("edges=%d/workers=%d", edges, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					s := benchScenario(b, edges)
					b.StartTimer()
					if _, err := RunWorkers(s, "Ours", PolicyOurs, TraderOurs, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineSharded measures the sharded reduction at a fixed edge
// scale across shard counts (one worker per shard edge range), isolating the
// fan-out/merge overhead the regional tier inherits. The Result is
// bit-identical across every row; only wall time may move.
func BenchmarkEngineSharded(b *testing.B) {
	const edges = 50
	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("edges=%d/shards=%d", edges, shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s := benchScenario(b, edges)
				b.StartTimer()
				if _, err := RunSharded(s, "Ours", PolicyOurs, TraderOurs, shards, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
