package sim

import (
	"errors"
	"testing"

	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

func surrogateFactory(cfg Config) (*Scenario, error) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(cfg.Seed, "zoo"))
	if err != nil {
		return nil, err
	}
	return NewScenario(cfg, zoo)
}

func TestRunSeedsMatchesSequential(t *testing.T) {
	combo, err := ComboByName("Ours")
	if err != nil {
		t.Fatal(err)
	}
	var runs []SeedRun
	for seed := int64(1); seed <= 4; seed++ {
		cfg := DefaultConfig(3)
		cfg.Horizon = 50
		cfg.Seed = seed
		runs = append(runs, SeedRun{Cfg: cfg, Combo: combo})
	}
	parallel, err := RunSeeds(runs, surrogateFactory, 4)
	if err != nil {
		t.Fatalf("RunSeeds: %v", err)
	}
	for i, r := range runs {
		s, err := surrogateFactory(r.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Run(s, combo.Name, combo.Policy, combo.Trader)
		if err != nil {
			t.Fatal(err)
		}
		if parallel[i].Cost.Total() != seq.Cost.Total() {
			t.Errorf("run %d: parallel %v != sequential %v", i, parallel[i].Cost.Total(), seq.Cost.Total())
		}
	}
}

func TestRunSeedsOfflineSentinel(t *testing.T) {
	cfg := DefaultConfig(3)
	cfg.Horizon = 40
	results, err := RunSeeds([]SeedRun{{Cfg: cfg, Combo: OfflineCombo()}}, surrogateFactory, 2)
	if err != nil {
		t.Fatal(err)
	}
	if results[0].Name != "Offline" {
		t.Errorf("Name = %q", results[0].Name)
	}
	if results[0].Fit > 1e-9 {
		t.Errorf("offline fit = %v", results[0].Fit)
	}
}

func TestRunSeedsErrors(t *testing.T) {
	if _, err := RunSeeds(nil, surrogateFactory, 1); err == nil {
		t.Error("expected error for no runs")
	}
	cfg := DefaultConfig(2)
	combo, err := ComboByName("Ours")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunSeeds([]SeedRun{{Cfg: cfg, Combo: combo}}, nil, 1); err == nil {
		t.Error("expected error for nil factory")
	}
	boom := errors.New("boom")
	_, err = RunSeeds([]SeedRun{{Cfg: cfg, Combo: combo}}, func(Config) (*Scenario, error) {
		return nil, boom
	}, 1)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want wrapped boom", err)
	}
}

func TestRunSeedsWorkerClamping(t *testing.T) {
	combo, err := ComboByName("Greedy-TH")
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Horizon = 20
	// More workers than runs, and zero workers (defaulting) both work.
	for _, workers := range []int{0, 16} {
		results, err := RunSeeds([]SeedRun{{Cfg: cfg, Combo: combo}}, surrogateFactory, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(results) != 1 || results[0] == nil {
			t.Fatalf("workers=%d: bad results", workers)
		}
	}
}
