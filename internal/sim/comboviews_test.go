package sim

import (
	"math"
	"testing"

	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// viewTestScenario builds two identical scenarios over identically seeded
// surrogate zoos.
func viewTestScenario(t *testing.T) (*Scenario, *Scenario) {
	t.Helper()
	cfg := DefaultConfig(4)
	cfg.Horizon = 60
	cfg.Seed = 11
	mk := func() *Scenario {
		zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(cfg.Seed, "zoo"))
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewScenario(cfg, zoo)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	return mk(), mk()
}

func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.CumTotal) != len(b.CumTotal) {
		t.Fatalf("%s: series lengths %d vs %d", label, len(a.CumTotal), len(b.CumTotal))
	}
	for i := range a.CumTotal {
		if math.Float64bits(a.CumTotal[i]) != math.Float64bits(b.CumTotal[i]) {
			t.Fatalf("%s: CumTotal[%d] = %v vs %v", label, i, a.CumTotal[i], b.CumTotal[i])
		}
	}
	if math.Float64bits(a.Cost.Total()) != math.Float64bits(b.Cost.Total()) {
		t.Fatalf("%s: total cost %v vs %v", label, a.Cost.Total(), b.Cost.Total())
	}
	if math.Float64bits(a.Fit) != math.Float64bits(b.Fit) {
		t.Fatalf("%s: fit %v vs %v", label, a.Fit, b.Fit)
	}
}

// TestComboViewsMatchSequential pins the stream-window construction:
// playing k combos on ComboViews — in any execution order — must be
// bit-identical to playing them sequentially on the scenario itself.
func TestComboViewsMatchSequential(t *testing.T) {
	seq, split := viewTestScenario(t)
	names := []string{"Ours", "Greedy-LY", "Offline"}

	sequential := make([]*Result, len(names))
	for i, name := range names {
		res, err := runComboForTest(seq, name)
		if err != nil {
			t.Fatal(err)
		}
		sequential[i] = res
	}

	views := split.ComboViews(len(names))
	// Deliberately play the views in reverse order: windows, not execution
	// order, determine the draws.
	for i := len(names) - 1; i >= 0; i-- {
		res, err := runComboForTest(views[i], names[i])
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, names[i], sequential[i], res)
	}
}

// TestComboViewsLeaveParentInSequence checks that after carving k views the
// parent scenario continues exactly where the k windows ended: a combo on
// the parent equals the (k+1)-th sequential combo.
func TestComboViewsLeaveParentInSequence(t *testing.T) {
	seq, split := viewTestScenario(t)
	// Sequential: three combos back to back.
	var last *Result
	for _, name := range []string{"Ours", "Ours", "Ours"} {
		res, err := runComboForTest(seq, name)
		if err != nil {
			t.Fatal(err)
		}
		last = res
	}
	// Split: two views, then the parent plays the third combo itself.
	views := split.ComboViews(2)
	for _, v := range views {
		if _, err := runComboForTest(v, "Ours"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := runComboForTest(split, "Ours")
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, "parent-after-views", last, res)
}

// runComboForTest mirrors figures.runCombo without the import cycle.
func runComboForTest(s *Scenario, name string) (*Result, error) {
	if name == "Offline" {
		return Offline(s)
	}
	combo, err := ComboByName(name)
	if err != nil {
		return nil, err
	}
	return Run(s, combo.Name, combo.Policy, combo.Trader)
}
