package sim

import (
	"math"
	"testing"

	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

// Failure-injection and degenerate-input tests: the engine must stay
// well-defined when the world misbehaves.

func TestRunWithZeroWorkload(t *testing.T) {
	// An idle system: no samples ever arrive. Emissions stay zero, accuracy
	// is zero by convention, and the trader sells the whole surplus cap
	// without the cost going NaN.
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(1, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Horizon = 30
	wl := make([][]int, cfg.Horizon)
	for t2 := range wl {
		wl[t2] = make([]int, cfg.Edges)
	}
	s, err := NewScenarioWithTraces(cfg, zoo, wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for t2, e := range res.Emissions {
		if res.WorkloadTotal[t2] != 0 {
			t.Fatal("workload should be zero")
		}
		// Transfer energy on downloads is the only possible emission.
		if e < 0 {
			t.Fatal("negative emission")
		}
	}
	if math.IsNaN(res.Cost.Total()) {
		t.Fatal("NaN cost under zero workload")
	}
	if res.OverallAccuracy != 0 {
		t.Errorf("accuracy = %v with no samples", res.OverallAccuracy)
	}
	// With zero emissions the trader sells the surplus; the primal-dual
	// transient oversells slightly before lambda catches up (Theorem 2's
	// sub-linear fit), but the violation must stay well under the cap.
	if res.Fit > cfg.InitialCap {
		t.Errorf("fit = %v exceeds the cap %v", res.Fit, cfg.InitialCap)
	}
}

func TestRunWithBurstyWorkload(t *testing.T) {
	// A pathological trace: everything arrives in one slot.
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(2, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Horizon = 20
	wl := make([][]int, cfg.Horizon)
	for t2 := range wl {
		wl[t2] = make([]int, cfg.Edges)
	}
	wl[10][0] = 100000
	wl[10][1] = 100000
	s, err := NewScenarioWithTraces(cfg, zoo, wl, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Emissions[10] <= 0 {
		t.Error("burst slot produced no emission")
	}
	for t2 := 11; t2 < cfg.Horizon; t2++ {
		if res.WorkloadTotal[t2] != 0 {
			t.Error("non-burst slot has workload")
		}
	}
	if math.IsNaN(res.Cost.Total()) || math.IsInf(res.Cost.Total(), 0) {
		t.Fatal("non-finite cost under burst")
	}
}

func TestRunWithSingleModelZoo(t *testing.T) {
	// With N=1 every policy must pin the only model and never switch after
	// the initial download.
	zoo, err := models.NewSurrogateZoo([]models.SurrogateModel{{
		Name: "only", MeanLoss: 0.4, LossSigma: 0.1, Accuracy: 0.8,
		SizeBytes: 1000, PhiKWh: 7e-8, BaseLatencySec: 0.05,
	}}, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Horizon = 40
	s, err := NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Switches != 3 {
		t.Errorf("switches = %d, want exactly one download per edge", res.Switches)
	}
}

func TestRunWithConstantPrices(t *testing.T) {
	// Flat prices remove all trading signal; the system must still satisfy
	// the constraint sub-linearly and never trade negative quantities.
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(3, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(3)
	cfg.Horizon = 50
	prices := &market.Prices{Buy: make([]float64, 50), Sell: make([]float64, 50)}
	for i := range prices.Buy {
		prices.Buy[i] = 8
		prices.Sell[i] = 7.2
	}
	s, err := NewScenarioWithTraces(cfg, zoo, nil, prices)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range res.Decisions {
		if d.Buy < 0 || d.Sell < 0 {
			t.Fatal("negative trade")
		}
	}
}

func TestRunExtraPoliciesIntegrate(t *testing.T) {
	// The ablation-only policies run through the full engine.
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(4, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Horizon = 30
	s, err := NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		pf   PolicyFactory
	}{
		{"EXP3", PolicyEXP3},
		{"EpsilonGreedy", PolicyEpsilonGreedy},
	} {
		res, err := Run(s, tc.name, tc.pf, TraderOurs)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if math.IsNaN(res.Cost.Total()) {
			t.Fatalf("%s: NaN cost", tc.name)
		}
	}
}

func TestRunWithZeroCapAndZeroRate(t *testing.T) {
	// rate=0: no emissions at all; the trader has nothing to do.
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(5, "zoo"))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(2)
	cfg.Horizon = 30
	cfg.EmissionRate = 0
	cfg.InitialCap = 0
	s, err := NewScenario(cfg, zoo)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s, "Ours", PolicyOurs, TraderOurs)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, e := range res.Emissions {
		if e != 0 {
			t.Fatal("emission with zero rate")
		}
	}
	// With R=0 any sale is a violation; only the bounded sell transient of
	// the primal-dual update may appear.
	if math.IsNaN(res.Fit) || res.Fit > 1 {
		t.Errorf("fit = %v, want a small bounded transient", res.Fit)
	}
}
