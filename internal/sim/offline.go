package sim

import (
	"fmt"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/core"
	"github.com/carbonedge/carbonedge/internal/engine"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Offline computes the paper's "Offline" scheme: each edge permanently
// hosts its posterior-best model (one download at the first slot), and the
// carbon trading problem is solved to optimality with the entire horizon's
// emissions and prices known in advance (the paper uses Gurobi; our LP has
// closed form, see trading.OfflineOptimum). The result doubles as the P*
// comparator for the P0 regret in Fig. 10.
//
// The slot protocol itself runs on the shared engine: fixed per-edge
// policies and a no-op trader produce the realized emission series, then
// the clairvoyant trade schedule is patched in.
func Offline(s *Scenario) (*Result, error) {
	cfg := s.Cfg
	policies := make([]bandit.Policy, cfg.Edges)
	for i := range policies {
		p, err := bandit.NewFixed(s.BestArm(i), s.NumModels())
		if err != nil {
			return nil, fmt.Errorf("fixed policy for edge %d: %w", i, err)
		}
		policies[i] = p
	}
	ctrl, err := core.NewWithComponents(core.Config{
		NumModels:     s.NumModels(),
		DownloadCosts: s.Delays,
		Horizon:       cfg.Horizon,
		InitialCap:    cfg.InitialCap,
		Seed:          cfg.Seed,
	}, policies, trading.NewNullTrader())
	if err != nil {
		return nil, fmt.Errorf("controller: %w", err)
	}
	res, err := engine.Run(engine.Config{
		Name:         "Offline",
		Horizon:      cfg.Horizon,
		NumModels:    s.NumModels(),
		InitialCap:   cfg.InitialCap,
		EmissionRate: cfg.EmissionRate,
		Prices:       s.Prices,
		SwitchCosts:  s.Delays,
	}, ctrl, s.steppers("Offline"))
	if err != nil {
		return nil, err
	}

	// Offline-optimal trading against the realized emission series; the
	// engine ran with the null trader, so trading costs are zero so far.
	decisions, _, err := trading.OfflineOptimum(
		res.Emissions, s.Prices.Buy, s.Prices.Sell, cfg.InitialCap)
	if err != nil {
		return nil, fmt.Errorf("offline trading: %w", err)
	}
	res.Decisions = decisions
	spend, bought, cumTrade := 0.0, 0.0, 0.0
	for t, d := range decisions {
		cumTrade += d.Cost(trading.Quote{Buy: s.Prices.Buy[t], Sell: s.Prices.Sell[t]})
		res.CumTotal[t] += cumTrade
		spend += d.Buy * s.Prices.Buy[t]
		bought += d.Buy
	}
	res.Cost.Trading = cumTrade
	fit, err := trading.Fit(res.Emissions, res.Decisions, cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	res.AvgBuyPrice = 0
	if bought > 0 {
		res.AvgBuyPrice = spend / bought
	}
	return res, nil
}

// RegretP0 returns P(run) - P(offline), the paper's regret for the original
// problem P0 (Fig. 10).
func RegretP0(run, offline *Result) float64 {
	return run.Cost.Total() - offline.Cost.Total()
}
