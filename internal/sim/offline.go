package sim

import (
	"fmt"

	"github.com/carbonedge/carbonedge/internal/energy"
	"github.com/carbonedge/carbonedge/internal/metrics"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// Offline computes the paper's "Offline" scheme: each edge permanently
// hosts its posterior-best model (one download at the first slot), and the
// carbon trading problem is solved to optimality with the entire horizon's
// emissions and prices known in advance (the paper uses Gurobi; our LP has
// closed form, see trading.OfflineOptimum). The result doubles as the P*
// comparator for the P0 regret in Fig. 10.
func Offline(s *Scenario) (*Result, error) {
	cfg := s.Cfg
	res := &Result{
		Name:          "Offline",
		CumTotal:      make([]float64, cfg.Horizon),
		Emissions:     make([]float64, cfg.Horizon),
		WorkloadTotal: make([]int, cfg.Horizon),
		Accuracy:      make([]float64, cfg.Horizon),
		Selections:    make([][]int, cfg.Edges),
	}
	meter, err := energy.NewMeter(cfg.EmissionRate)
	if err != nil {
		return nil, err
	}
	best := make([]int, cfg.Edges)
	for i := range best {
		best[i] = s.BestArm(i)
		res.Selections[i] = make([]int, s.NumModels())
	}
	lossRNG := numeric.SplitRNG(cfg.Seed, "loss-Offline")

	// Pass 1: inference cost and the emission series under the best models.
	pool := s.Zoo.PoolSize()
	perSlot := make([]metrics.CostBreakdown, cfg.Horizon)
	totalCorrect, totalSamples := 0, 0
	var batch []int
	for t := 0; t < cfg.Horizon; t++ {
		var slotEmission float64
		slotCorrect, slotSamples := 0, 0
		for i := 0; i < cfg.Edges; i++ {
			arm := best[i]
			res.Selections[i][arm]++
			info := s.Zoo.Info(arm)
			m := s.Workload[t][i]
			if cap(batch) < m {
				batch = make([]int, m)
			}
			batch = batch[:m]
			for j := range batch {
				batch[j] = s.streamRNGs[i].Intn(pool)
			}
			_, correct := s.Zoo.BatchLoss(arm, batch, lossRNG)
			slotCorrect += correct
			slotSamples += m

			perSlot[t].InferLoss += s.Zoo.MeanLoss(arm)
			perSlot[t].Compute += s.CompCost[i][arm]
			if t == 0 {
				perSlot[t].Switching += s.Delays[i]
				res.Switches++
				slotEmission += meter.RecordTransfer(
					energy.TransferEnergy(energy.TransferEnergyPerByte, info.SizeBytes))
			}
			slotEmission += meter.RecordInference(energy.InferenceEnergy(info.PhiKWh, m))
		}
		res.Emissions[t] = slotEmission
		res.WorkloadTotal[t] = slotSamples
		if slotSamples > 0 {
			res.Accuracy[t] = float64(slotCorrect) / float64(slotSamples)
		}
		totalCorrect += slotCorrect
		totalSamples += slotSamples
	}
	if totalSamples > 0 {
		res.OverallAccuracy = float64(totalCorrect) / float64(totalSamples)
	}

	// Pass 2: offline-optimal trading against the realized emission series.
	decisions, tradeCost, err := trading.OfflineOptimum(
		res.Emissions, s.Prices.Buy, s.Prices.Sell, cfg.InitialCap)
	if err != nil {
		return nil, fmt.Errorf("offline trading: %w", err)
	}
	res.Decisions = decisions
	spend, bought := 0.0, 0.0
	for t, d := range decisions {
		perSlot[t].Trading = d.Cost(trading.Quote{Buy: s.Prices.Buy[t], Sell: s.Prices.Sell[t]})
		spend += d.Buy * s.Prices.Buy[t]
		bought += d.Buy
	}
	_ = tradeCost
	for t := range perSlot {
		res.Cost.Add(perSlot[t])
		res.CumTotal[t] = res.Cost.Total()
	}
	fit, err := trading.Fit(res.Emissions, res.Decisions, cfg.InitialCap)
	if err != nil {
		return nil, err
	}
	res.Fit = fit
	if bought > 0 {
		res.AvgBuyPrice = spend / bought
	}
	return res, nil
}

// RegretP0 returns P(run) - P(offline), the paper's regret for the original
// problem P0 (Fig. 10).
func RegretP0(run, offline *Result) float64 {
	return run.Cost.Total() - offline.Cost.Total()
}
