// Package dataset provides the synthetic stand-ins for the paper's MNIST and
// CIFAR-10 inference data.
//
// Real MNIST/CIFAR-10 files are unavailable offline, so each dataset is an
// explicit, fixed generative distribution D: every class has a smooth random
// template image, and a sample is its class template plus a random spatial
// shift and pixel noise. This preserves exactly the property the paper's
// algorithms rely on — data samples (a, b) are IID draws from an unknown,
// time-invariant distribution — while letting the nn substrate train models
// of genuinely different quality on it.
//
// The "CIFAR-like" variant uses three channels, higher noise, and partially
// blended templates, making it markedly harder than the "MNIST-like" variant,
// mirroring the accuracy gap between the two real datasets.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/nn"
)

// Spec describes a synthetic dataset family.
type Spec struct {
	Name     string
	Channels int
	Height   int
	Width    int
	Classes  int
	// Noise is the per-pixel Gaussian noise sigma.
	Noise float64
	// Blend in [0, 1) mixes each class template with its neighbor class,
	// raising the Bayes error (used to make CIFAR-like harder).
	Blend float64
	// MaxShift is the maximum absolute spatial shift in pixels.
	MaxShift int
	// Blobs is the number of Gaussian blobs per class template.
	Blobs int
}

// The two dataset families evaluated in the paper.
var (
	// MNISTLike mirrors MNIST: 1x28x28, 10 classes, relatively easy. The
	// spatial shift of up to 4 pixels is what separates the architectures:
	// convolutional models tolerate it, matched-filter MLPs degrade —
	// reproducing the model-quality spread of the paper's real MNIST zoo.
	MNISTLike = Spec{
		Name:     "mnist-like",
		Channels: 1, Height: 28, Width: 28, Classes: 10,
		Noise: 0.5, Blend: 0.0, MaxShift: 4, Blobs: 4,
	}
	// CIFARLike mirrors CIFAR-10: 3x32x32, 10 classes, much harder: more
	// noise, bigger shifts, and blended class templates raise the Bayes
	// error, yielding the wide accuracy spread of real CIFAR-10 models.
	CIFARLike = Spec{
		Name:     "cifar-like",
		Channels: 3, Height: 32, Width: 32, Classes: 10,
		Noise: 0.75, Blend: 0.5, MaxShift: 5, Blobs: 5,
	}
)

// Distribution is the paper's shared generative distribution D: fixed class
// templates from which every edge draws its own independent IID stream. The
// cloud trains models on samples of D; edges sample D with their own RNGs —
// sharing the Distribution value is what makes their streams identically
// distributed.
type Distribution struct {
	Spec      Spec
	templates []*nn.Tensor
}

// NewDistribution draws the class templates from rng, fixing D.
func NewDistribution(spec Spec, rng *rand.Rand) (*Distribution, error) {
	if spec.Classes < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 classes, got %d", spec.Classes)
	}
	d := &Distribution{Spec: spec}
	d.templates = make([]*nn.Tensor, spec.Classes)
	for c := 0; c < spec.Classes; c++ {
		d.templates[c] = makeTemplate(spec, rng)
	}
	if spec.Blend > 0 {
		blended := make([]*nn.Tensor, spec.Classes)
		for c := 0; c < spec.Classes; c++ {
			next := d.templates[(c+1)%spec.Classes]
			t := d.templates[c].Clone()
			for i := range t.Data {
				t.Data[i] = (1-spec.Blend)*t.Data[i] + spec.Blend*next.Data[i]
			}
			blended[c] = t
		}
		d.templates = blended
	}
	return d, nil
}

// Pool draws n IID samples.
func (d *Distribution) Pool(n int, rng *rand.Rand) []nn.Sample {
	out := make([]nn.Sample, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, d.Sample(rng))
	}
	return out
}

// Dataset holds generated train and test pools.
type Dataset struct {
	Spec  Spec
	Train []nn.Sample
	Test  []nn.Sample

	dist *Distribution
}

// Generate builds a dataset with the requested pool sizes. Everything is
// deterministic given the RNG.
func Generate(spec Spec, trainN, testN int, rng *rand.Rand) (*Dataset, error) {
	dist, err := NewDistribution(spec, rng)
	if err != nil {
		return nil, err
	}
	return GenerateFrom(dist, trainN, testN, rng)
}

// GenerateFrom builds train/test pools over an existing distribution, so
// several parties (the cloud's trainer, each edge) can share D while
// sampling independently.
func GenerateFrom(dist *Distribution, trainN, testN int, rng *rand.Rand) (*Dataset, error) {
	if trainN <= 0 || testN <= 0 {
		return nil, fmt.Errorf("dataset: pool sizes must be positive, got train=%d test=%d", trainN, testN)
	}
	d := &Dataset{Spec: dist.Spec, dist: dist}
	d.Train = dist.Pool(trainN, rng)
	d.Test = dist.Pool(testN, rng)
	return d, nil
}

// Distribution returns the dataset's underlying D.
func (d *Dataset) Distribution() *Distribution { return d.dist }

// Sample draws one labeled example from the distribution.
func (d *Distribution) Sample(rng *rand.Rand) nn.Sample {
	spec := d.Spec
	label := rng.Intn(spec.Classes)
	base := d.templates[label]
	x := nn.NewTensor(spec.Channels, spec.Height, spec.Width)
	dy := rng.Intn(2*spec.MaxShift+1) - spec.MaxShift
	dx := rng.Intn(2*spec.MaxShift+1) - spec.MaxShift
	for c := 0; c < spec.Channels; c++ {
		for y := 0; y < spec.Height; y++ {
			sy := y + dy
			for xx := 0; xx < spec.Width; xx++ {
				sx := xx + dx
				v := 0.0
				if sy >= 0 && sy < spec.Height && sx >= 0 && sx < spec.Width {
					v = base.At3(c, sy, sx)
				}
				x.Set3(c, y, xx, v+rng.NormFloat64()*spec.Noise)
			}
		}
	}
	return nn.Sample{X: x, Label: label}
}

// makeTemplate builds one smooth class template as a sum of Gaussian blobs
// with random centers, widths, and signs, normalized to unit peak amplitude.
func makeTemplate(spec Spec, rng *rand.Rand) *nn.Tensor {
	t := nn.NewTensor(spec.Channels, spec.Height, spec.Width)
	type blob struct {
		cx, cy, sigma, amp float64
		channel            int
	}
	blobs := make([]blob, 0, spec.Blobs)
	for b := 0; b < spec.Blobs; b++ {
		blobs = append(blobs, blob{
			cx:      rng.Float64() * float64(spec.Width),
			cy:      rng.Float64() * float64(spec.Height),
			sigma:   2 + rng.Float64()*float64(spec.Height)/5,
			amp:     1 + rng.Float64(),
			channel: rng.Intn(spec.Channels),
		})
	}
	maxAbs := 0.0
	for _, bl := range blobs {
		for y := 0; y < spec.Height; y++ {
			for x := 0; x < spec.Width; x++ {
				dy := float64(y) - bl.cy
				dx := float64(x) - bl.cx
				v := bl.amp * math.Exp(-(dx*dx+dy*dy)/(2*bl.sigma*bl.sigma))
				nv := t.At3(bl.channel, y, x) + v
				t.Set3(bl.channel, y, x, nv)
				if a := math.Abs(nv); a > maxAbs {
					maxAbs = a
				}
			}
		}
	}
	if maxAbs > 0 {
		for i := range t.Data {
			t.Data[i] /= maxAbs
		}
	}
	return t
}

// Stream draws IID sample indices from the test pool, modeling the paper's
// per-edge stochastic data stream. Each edge holds its own Stream so streams
// are independent across edges while sharing the distribution D.
type Stream struct {
	pool int
	rng  *rand.Rand
}

// NewStream creates a stream over a test pool of the given size.
func NewStream(poolSize int, rng *rand.Rand) (*Stream, error) {
	if poolSize <= 0 {
		return nil, fmt.Errorf("dataset: stream over empty pool")
	}
	return &Stream{pool: poolSize, rng: rng}, nil
}

// Next returns the next sample index.
func (s *Stream) Next() int { return s.rng.Intn(s.pool) }

// NextBatch fills out with the next n sample indices and returns it.
func (s *Stream) NextBatch(n int, out []int) []int {
	if cap(out) < n {
		out = make([]int, n)
	}
	out = out[:n]
	for i := range out {
		out[i] = s.rng.Intn(s.pool)
	}
	return out
}
