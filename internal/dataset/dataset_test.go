package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/carbonedge/carbonedge/internal/nn"
	"github.com/carbonedge/carbonedge/internal/numeric"
)

func TestGenerateShapesAndLabels(t *testing.T) {
	for _, spec := range []Spec{MNISTLike, CIFARLike} {
		t.Run(spec.Name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1))
			d, err := Generate(spec, 50, 30, rng)
			if err != nil {
				t.Fatalf("Generate: %v", err)
			}
			if len(d.Train) != 50 || len(d.Test) != 30 {
				t.Fatalf("pool sizes = %d/%d", len(d.Train), len(d.Test))
			}
			for _, s := range append(append([]nn.Sample{}, d.Train...), d.Test...) {
				if s.Label < 0 || s.Label >= spec.Classes {
					t.Fatalf("label %d out of range", s.Label)
				}
				if s.X.Shape[0] != spec.Channels || s.X.Shape[1] != spec.Height || s.X.Shape[2] != spec.Width {
					t.Fatalf("sample shape %v", s.X.Shape)
				}
				for _, v := range s.X.Data {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatal("non-finite pixel")
					}
				}
			}
		})
	}
}

func TestGenerateErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := Generate(MNISTLike, 0, 10, rng); err == nil {
		t.Error("expected error for zero train pool")
	}
	if _, err := Generate(MNISTLike, 10, 0, rng); err == nil {
		t.Error("expected error for zero test pool")
	}
	bad := MNISTLike
	bad.Classes = 1
	if _, err := Generate(bad, 10, 10, rng); err == nil {
		t.Error("expected error for single class")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d1, err := Generate(MNISTLike, 20, 20, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Generate(MNISTLike, 20, 20, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range d1.Train {
		if d1.Train[i].Label != d2.Train[i].Label {
			t.Fatal("labels differ across identical seeds")
		}
		for j := range d1.Train[i].X.Data {
			if d1.Train[i].X.Data[j] != d2.Train[i].X.Data[j] {
				t.Fatal("pixels differ across identical seeds")
			}
		}
	}
}

func TestClassesAreSeparable(t *testing.T) {
	// A small MLP must learn MNIST-like far above chance — otherwise the
	// dataset carries no signal and model-quality differences vanish.
	rng := rand.New(rand.NewSource(3))
	d, err := Generate(MNISTLike, 600, 300, rng)
	if err != nil {
		t.Fatal(err)
	}
	net := nn.BuildMLP("probe", []int{1, 28, 28}, 32, 16, MNISTLike.Classes, rng)
	if _, err := nn.Train(net, d.Train, nn.TrainConfig{Epochs: 4, BatchSize: 16, LR: 0.05}, rng); err != nil {
		t.Fatal(err)
	}
	acc, _ := nn.Evaluate(net, d.Test)
	if acc < 0.5 {
		t.Errorf("probe accuracy = %v, want >= 0.5 (chance is 0.1)", acc)
	}
}

func TestCIFARLikeHarderThanMNISTLike(t *testing.T) {
	// Same-capacity probes must find CIFAR-like harder; the paper's accuracy
	// gap between Figs. 12 and 13 depends on this.
	train := func(spec Spec, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		d, err := Generate(spec, 500, 300, rng)
		if err != nil {
			t.Fatal(err)
		}
		in := []int{spec.Channels, spec.Height, spec.Width}
		net := nn.BuildMLP("probe", in, 32, 16, spec.Classes, rng)
		if _, err := nn.Train(net, d.Train, nn.TrainConfig{Epochs: 3, BatchSize: 16, LR: 0.05}, rng); err != nil {
			t.Fatal(err)
		}
		acc, _ := nn.Evaluate(net, d.Test)
		return acc
	}
	mnistAcc := train(MNISTLike, 4)
	cifarAcc := train(CIFARLike, 4)
	if cifarAcc >= mnistAcc {
		t.Errorf("cifar-like acc %v >= mnist-like acc %v", cifarAcc, mnistAcc)
	}
}

func TestStreamUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s, err := NewStream(10, rng)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 10)
	const draws = 100000
	for i := 0; i < draws; i++ {
		idx := s.Next()
		if idx < 0 || idx >= 10 {
			t.Fatalf("index %d out of range", idx)
		}
		counts[idx]++
	}
	for i, c := range counts {
		got := float64(c) / draws
		if math.Abs(got-0.1) > 0.01 {
			t.Errorf("empirical p[%d] = %v", i, got)
		}
	}
}

func TestStreamErrorsAndBatch(t *testing.T) {
	if _, err := NewStream(0, rand.New(rand.NewSource(1))); err == nil {
		t.Error("expected error for empty pool")
	}
	s, err := NewStream(5, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	out := s.NextBatch(7, nil)
	if len(out) != 7 {
		t.Fatalf("batch len = %d", len(out))
	}
	// Reuse a larger buffer.
	buf := make([]int, 10)
	out2 := s.NextBatch(3, buf)
	if len(out2) != 3 || &out2[0] != &buf[0] {
		t.Error("NextBatch did not reuse buffer")
	}
}

// Property: every generated sample has label matching a template index and
// bounded pixel magnitudes (template peak 1 + noise tails).
func TestSamplePixelBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	d, err := Generate(MNISTLike, 5, 5, rng)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(seed int64) bool {
		s := d.Distribution().Sample(numeric.SplitRNG(seed, "prop"))
		if s.Label < 0 || s.Label >= MNISTLike.Classes {
			return false
		}
		for _, v := range s.X.Data {
			if math.Abs(v) > 1+6*MNISTLike.Noise {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
