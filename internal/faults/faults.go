// Package faults is a deterministic fault injector for the deployment's
// net.Conn links: a Conn wraps a real connection and perturbs its I/O
// according to a slot-indexed Schedule — added latency, connection cuts
// before a read or a write, frames truncated mid-body, and corrupted frame
// bytes. Every random choice (which byte to flip, where to truncate) is
// drawn from an injected *rand.Rand, normally a numeric.SplitRNG stream, so
// a chaos run replays bit-for-bit from (seed, schedule) and satisfies
// carbonlint's nodeterm rules: the package never reads the wall clock, and
// sleeping is delegated to an injectable Sleep function.
//
// The wrapper understands just enough of the deploy framing to aim faults:
// deploy.WriteMessage emits each frame as two Write calls (a 4-byte length
// header, then the body), so Conn tracks header/body parity and lands
// Corrupt and Truncate faults on frame bodies, which surface at the peer as
// fatal protocol errors (bad JSON) and transient mid-frame connection
// losses respectively.
//
// Slot indexing is cooperative: the harness driving the connection calls
// SetSlot when a slot begins (an edge agent knows it from the Assign frame),
// and each scheduled Event fires on the next matching I/O operation at or
// after its slot.
package faults

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Kind enumerates injectable fault kinds.
type Kind int

const (
	// Latency sleeps Event.Delay before the next write, then proceeds.
	Latency Kind = iota + 1
	// CutWrite closes the underlying connection instead of performing the
	// next write: the peer loses the frame and sees a connection error.
	CutWrite
	// CutRead closes the underlying connection instead of performing the
	// next read: anything the peer sends next is lost.
	CutRead
	// Truncate writes a random strict prefix of the next frame body, then
	// closes the connection: the peer observes a mid-frame EOF.
	Truncate
	// Corrupt flips one random byte of the next frame body: the peer
	// observes a fatal protocol (JSON) error.
	Corrupt
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case Latency:
		return "latency"
	case CutWrite:
		return "cut-write"
	case CutRead:
		return "cut-read"
	case Truncate:
		return "truncate"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("faults.Kind(%d)", int(k))
}

// Event is one scheduled fault: at slot Slot (set via Conn.SetSlot), the
// next matching I/O operation is perturbed.
type Event struct {
	Slot  int
	Kind  Kind
	Delay time.Duration // Latency only
}

// Schedule is a fault script for one connection, any order; Conn sorts it
// by slot (stable, preserving same-slot order).
type Schedule []Event

// KillAt is the canonical link-kill schedule (edge or region): the
// connection is cut on the first read at or after slot, so the link dies
// between slots and the peer's next frame is lost in flight.
func KillAt(slot int) Schedule { return Schedule{{Slot: slot, Kind: CutRead}} }

// TruncateAt is the canonical torn-frame schedule: the first frame body
// written at or after slot is cut mid-frame, so the peer observes a
// mid-frame EOF on a frame whose sender believes it failed.
func TruncateAt(slot int) Schedule { return Schedule{{Slot: slot, Kind: Truncate}} }

// ErrInjected is returned by Conn for I/O the injector suppressed; it
// implements net.Error as a non-timeout error so the deployment's error
// taxonomy classifies it as a transient connection failure.
type ErrInjected struct{ Event Event }

// Error implements error.
func (e *ErrInjected) Error() string {
	return fmt.Sprintf("faults: injected %s at slot %d", e.Event.Kind, e.Event.Slot)
}

// Timeout implements net.Error.
func (e *ErrInjected) Timeout() bool { return false }

// Temporary implements net.Error (deprecated in net, kept for taxonomy).
func (e *ErrInjected) Temporary() bool { return true }

// Conn wraps a net.Conn with scheduled fault injection. It is safe for the
// usual net.Conn discipline (one reader, one writer, SetSlot from either).
type Conn struct {
	inner net.Conn
	sleep func(time.Duration)

	mu      sync.Mutex
	rng     *rand.Rand
	pending []Event // sorted by slot; consumed front-first once armed
	slot    int
	cut     bool
	// wroteHeader tracks frame parity: deploy.WriteMessage issues a 4-byte
	// header write, then a body write. Body-targeted faults (Truncate,
	// Corrupt) fire only on body writes so the frame length stays honest.
	wroteHeader bool
}

var _ net.Conn = (*Conn)(nil)

// New wraps conn. The rng drives every random choice the injector makes and
// must not be shared with other consumers (use a dedicated SplitRNG stream).
// sleep implements Latency events; nil defaults to time.Sleep.
func New(conn net.Conn, sched Schedule, rng *rand.Rand, sleep func(time.Duration)) (*Conn, error) {
	if conn == nil {
		return nil, fmt.Errorf("faults: nil conn")
	}
	if rng == nil {
		return nil, fmt.Errorf("faults: nil rng (derive one via numeric.SplitRNG)")
	}
	for _, ev := range sched {
		if ev.Kind < Latency || ev.Kind > Corrupt {
			return nil, fmt.Errorf("faults: unknown kind %d", int(ev.Kind))
		}
		if ev.Slot < 0 {
			return nil, fmt.Errorf("faults: negative slot %d", ev.Slot)
		}
		if ev.Kind == Latency && ev.Delay < 0 {
			return nil, fmt.Errorf("faults: negative delay %v", ev.Delay)
		}
	}
	if sleep == nil {
		//lint:allow nodeterm Latency faults really wait by default; tests inject a recording sleep
		sleep = time.Sleep
	}
	pending := make(Schedule, len(sched))
	copy(pending, sched)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].Slot < pending[j].Slot })
	return &Conn{inner: conn, sleep: sleep, rng: rng, pending: pending, slot: -1}, nil
}

// SetSlot arms events scheduled for slots <= slot: each fires on the next
// matching I/O operation. Harnesses call it when the slot begins.
func (c *Conn) SetSlot(slot int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if slot > c.slot {
		c.slot = slot
	}
}

// next pops the front pending event if it is armed and matches want;
// Latency is write-targeted. Must hold mu.
func (c *Conn) next(read bool) (Event, bool) {
	if len(c.pending) == 0 || c.pending[0].Slot > c.slot {
		return Event{}, false
	}
	ev := c.pending[0]
	if read != (ev.Kind == CutRead) {
		return Event{}, false
	}
	c.pending = c.pending[1:]
	return ev, true
}

// Read implements net.Conn.
func (c *Conn) Read(b []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, &ErrInjected{Event{Slot: c.slot, Kind: CutRead}}
	}
	ev, ok := c.next(true)
	if ok {
		c.cut = true
		c.mu.Unlock()
		c.inner.Close()
		return 0, &ErrInjected{ev}
	}
	c.mu.Unlock()
	return c.inner.Read(b)
}

// Write implements net.Conn.
func (c *Conn) Write(b []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, &ErrInjected{Event{Slot: c.slot, Kind: CutWrite}}
	}
	body := c.wroteHeader
	c.wroteHeader = !c.wroteHeader
	ev, ok := c.next(false)
	if ok && (ev.Kind == Truncate || ev.Kind == Corrupt) && !body {
		// Body-targeted fault armed on a header write: push it back for the
		// body write that immediately follows.
		c.pending = append(Schedule{ev}, c.pending...)
		ok = false
	}
	if !ok {
		c.mu.Unlock()
		return c.inner.Write(b)
	}
	switch ev.Kind {
	case Latency:
		d := ev.Delay
		c.mu.Unlock()
		c.sleep(d)
		return c.inner.Write(b)
	case CutWrite:
		c.cut = true
		c.mu.Unlock()
		c.inner.Close()
		return 0, &ErrInjected{ev}
	case Truncate:
		c.cut = true
		n := 0
		if len(b) > 1 {
			n = 1 + c.rng.Intn(len(b)-1) // strict, non-empty prefix
		}
		c.mu.Unlock()
		if n > 0 {
			c.inner.Write(b[:n]) //nolint:errcheck // the cut error below dominates
		}
		c.inner.Close()
		return n, &ErrInjected{ev}
	case Corrupt:
		mangled := make([]byte, len(b))
		copy(mangled, b)
		if len(mangled) > 0 {
			mangled[c.rng.Intn(len(mangled))] ^= 0xff
		}
		c.mu.Unlock()
		n, err := c.inner.Write(mangled)
		return n, err
	}
	c.mu.Unlock()
	return c.inner.Write(b)
}

// Close implements net.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Pending returns how many scheduled events have not fired yet.
func (c *Conn) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}
