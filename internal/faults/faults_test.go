package faults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

func noSleep(time.Duration) {}

func newPair(t *testing.T, sched Schedule, label string) (*Conn, net.Conn, *[]time.Duration) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() { a.Close(); b.Close() })
	slept := &[]time.Duration{}
	fc, err := New(a, sched, numeric.SplitRNG(1, label), func(d time.Duration) { *slept = append(*slept, d) })
	if err != nil {
		t.Fatal(err)
	}
	return fc, b, slept
}

// readAll drains n bytes from conn into a fresh buffer on a goroutine.
func readN(conn net.Conn, n int) chan []byte {
	out := make(chan []byte, 1)
	go func() {
		buf := make([]byte, n)
		if _, err := io.ReadFull(conn, buf); err != nil {
			out <- nil
			return
		}
		out <- buf
	}()
	return out
}

func TestNewValidation(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	rng := numeric.SplitRNG(1, "faults-valid")
	if _, err := New(nil, nil, rng, nil); err == nil {
		t.Error("expected error for nil conn")
	}
	if _, err := New(a, nil, nil, nil); err == nil {
		t.Error("expected error for nil rng")
	}
	if _, err := New(a, Schedule{{Slot: 0, Kind: Kind(99)}}, rng, nil); err == nil {
		t.Error("expected error for unknown kind")
	}
	if _, err := New(a, Schedule{{Slot: -1, Kind: Latency}}, rng, nil); err == nil {
		t.Error("expected error for negative slot")
	}
	if _, err := New(a, Schedule{{Slot: 0, Kind: Latency, Delay: -time.Second}}, rng, nil); err == nil {
		t.Error("expected error for negative delay")
	}
}

func TestEventsWaitForTheirSlot(t *testing.T) {
	fc, peer, _ := newPair(t, Schedule{{Slot: 2, Kind: CutWrite}}, "faults-slot")
	// Slot 0: the slot-2 event must not fire.
	fc.SetSlot(0)
	got := readN(peer, 2)
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("write before the event's slot: %v", err)
	}
	if b := <-got; !bytes.Equal(b, []byte("ok")) {
		t.Fatalf("peer read %q", b)
	}
	// Slot 2: armed; the next write is suppressed and the conn is cut.
	fc.SetSlot(2)
	_, err := fc.Write([]byte("xx"))
	var inj *ErrInjected
	if !errors.As(err, &inj) || inj.Event.Kind != CutWrite {
		t.Fatalf("err = %v, want injected cut-write", err)
	}
	if _, err := fc.Write([]byte("yy")); err == nil {
		t.Fatal("writes after a cut must keep failing")
	}
	if fc.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", fc.Pending())
	}
}

func TestSetSlotIsMonotonic(t *testing.T) {
	fc, peer, _ := newPair(t, Schedule{{Slot: 1, Kind: CutWrite}}, "faults-mono")
	fc.SetSlot(3)
	fc.SetSlot(0) // must not rewind below 3
	got := readN(peer, 1)
	if _, err := fc.Write([]byte("a")); err == nil {
		t.Fatal("slot-1 event should still be armed at slot 3")
	}
	<-got
}

func TestCutReadOnlyFiresOnReads(t *testing.T) {
	fc, peer, _ := newPair(t, Schedule{{Slot: 0, Kind: CutRead}}, "faults-cutread")
	fc.SetSlot(0)
	// A write passes through: the event is read-targeted.
	got := readN(peer, 2)
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	<-got
	// The read is suppressed, and classified as a non-timeout net.Error.
	_, err := fc.Read(make([]byte, 1))
	var ne net.Error
	if !errors.As(err, &ne) || ne.Timeout() {
		t.Fatalf("err = %v, want a non-timeout net.Error", err)
	}
	// The inner conn was closed: the peer sees EOF.
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer should see the cut")
	}
}

func TestLatencyDelegatesToSleeper(t *testing.T) {
	const d = 123 * time.Millisecond
	fc, peer, slept := newPair(t, Schedule{{Slot: 0, Kind: Latency, Delay: d}}, "faults-latency")
	fc.SetSlot(0)
	got := readN(peer, 2)
	if _, err := fc.Write([]byte("ok")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if b := <-got; !bytes.Equal(b, []byte("ok")) {
		t.Fatalf("peer read %q", b)
	}
	if !reflect.DeepEqual(*slept, []time.Duration{d}) {
		t.Fatalf("slept %v, want [%v]", *slept, d)
	}
}

func TestTruncateWritesStrictPrefixOfBody(t *testing.T) {
	// Frame discipline: a 4-byte header write, then the body write. The
	// truncation must skip the header and cut the body mid-frame.
	runOnce := func() []byte {
		fc, peer, _ := newPair(t, Schedule{{Slot: 0, Kind: Truncate}}, "faults-trunc")
		fc.SetSlot(0)
		header := []byte{0, 0, 0, 16}
		body := bytes.Repeat([]byte("b"), 16)
		received := make(chan []byte, 1)
		go func() {
			var buf bytes.Buffer
			io.Copy(&buf, peer) //nolint:errcheck // drained until the cut
			received <- buf.Bytes()
		}()
		if _, err := fc.Write(header); err != nil {
			t.Fatalf("header write: %v", err)
		}
		n, err := fc.Write(body)
		var inj *ErrInjected
		if !errors.As(err, &inj) || inj.Event.Kind != Truncate {
			t.Fatalf("err = %v, want injected truncate", err)
		}
		if n <= 0 || n >= len(body) {
			t.Fatalf("wrote %d of %d bytes, want a strict non-empty prefix", n, len(body))
		}
		return <-received
	}
	first := runOnce()
	if len(first) <= len([]byte{0, 0, 0, 16}) {
		t.Fatalf("peer got %d bytes, want header plus partial body", len(first))
	}
	// Identical (seed, schedule) must replay the identical truncation point.
	if second := runOnce(); !bytes.Equal(first, second) {
		t.Errorf("truncation not deterministic: %d vs %d bytes", len(first), len(second))
	}
}

func TestCorruptFlipsExactlyOneBodyByte(t *testing.T) {
	fc, peer, _ := newPair(t, Schedule{{Slot: 0, Kind: Corrupt}}, "faults-corrupt")
	fc.SetSlot(0)
	header := []byte{0, 0, 0, 8}
	body := []byte("12345678")
	gotHeader := readN(peer, len(header))
	if _, err := fc.Write(header); err != nil {
		t.Fatalf("header write: %v", err)
	}
	if b := <-gotHeader; !bytes.Equal(b, header) {
		t.Fatalf("header corrupted: %v", b)
	}
	gotBody := readN(peer, len(body))
	if _, err := fc.Write(body); err != nil {
		t.Fatalf("body write: %v", err)
	}
	recv := <-gotBody
	diff := 0
	for i := range body {
		if recv[i] != body[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want exactly 1 (got %q)", diff, recv)
	}
	// The caller's buffer must be untouched.
	if !bytes.Equal(body, []byte("12345678")) {
		t.Error("corrupt mutated the caller's buffer")
	}
}

func TestSameSlotEventsFireInScheduleOrder(t *testing.T) {
	fc, peer, slept := newPair(t, Schedule{
		{Slot: 0, Kind: Latency, Delay: time.Millisecond},
		{Slot: 0, Kind: CutWrite},
	}, "faults-order")
	fc.SetSlot(0)
	got := readN(peer, 1)
	if _, err := fc.Write([]byte("a")); err != nil {
		t.Fatalf("latency write: %v", err)
	}
	<-got
	if len(*slept) != 1 {
		t.Fatalf("slept %v, want one delay", *slept)
	}
	if _, err := fc.Write([]byte("b")); err == nil {
		t.Fatal("second write should hit the cut")
	}
}

func TestErrInjectedTaxonomy(t *testing.T) {
	e := &ErrInjected{Event{Slot: 3, Kind: CutRead}}
	if e.Timeout() {
		t.Error("injected faults are not timeouts")
	}
	var ne net.Error = e
	_ = ne
	for _, k := range []Kind{Latency, CutWrite, CutRead, Truncate, Corrupt, Kind(42)} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", int(k))
		}
	}
	_ = noSleep
}
