package trace

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/carbonedge/carbonedge/internal/market"
	"github.com/carbonedge/carbonedge/internal/workload"
)

func TestWorkloadRoundTrip(t *testing.T) {
	gen, err := workload.NewGenerator(workload.Config{Edges: 4, MeanPeak: 50, Spread: 3},
		rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	original := gen.Series(30)
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, original); err != nil {
		t.Fatalf("WriteWorkload: %v", err)
	}
	decoded, err := ReadWorkload(&buf)
	if err != nil {
		t.Fatalf("ReadWorkload: %v", err)
	}
	if len(decoded) != len(original) {
		t.Fatalf("slots = %d, want %d", len(decoded), len(original))
	}
	for tt := range original {
		for i := range original[tt] {
			if decoded[tt][i] != original[tt][i] {
				t.Fatalf("mismatch at slot %d edge %d", tt, i)
			}
		}
	}
}

func TestWriteWorkloadErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteWorkload(&buf, nil); err == nil {
		t.Error("expected error for empty workload")
	}
	if err := WriteWorkload(&buf, [][]int{{}}); err == nil {
		t.Error("expected error for zero edges")
	}
	if err := WriteWorkload(&buf, [][]int{{1, 2}, {1}}); err == nil {
		t.Error("expected error for ragged rows")
	}
}

func TestReadWorkloadErrors(t *testing.T) {
	tests := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"header only", "slot,edge0\n"},
		{"bad header", "time,edge0\n0,5\n"},
		{"ragged row", "slot,edge0,edge1\n0,5\n"},
		{"non-integer", "slot,edge0\n0,abc\n"},
		{"negative", "slot,edge0\n0,-3\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadWorkload(strings.NewReader(tt.csv)); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestPricesRoundTrip(t *testing.T) {
	p, err := market.GeneratePrices(market.DefaultPriceConfig(), 40, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePrices(&buf, p); err != nil {
		t.Fatalf("WritePrices: %v", err)
	}
	decoded, err := ReadPrices(&buf)
	if err != nil {
		t.Fatalf("ReadPrices: %v", err)
	}
	if decoded.Horizon() != p.Horizon() {
		t.Fatalf("horizon = %d", decoded.Horizon())
	}
	for tt := range p.Buy {
		if decoded.Buy[tt] != p.Buy[tt] || decoded.Sell[tt] != p.Sell[tt] {
			t.Fatalf("price mismatch at slot %d", tt)
		}
	}
}

func TestWritePricesErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrices(&buf, nil); err == nil {
		t.Error("expected error for nil prices")
	}
	if err := WritePrices(&buf, &market.Prices{}); err == nil {
		t.Error("expected error for empty prices")
	}
}

func TestReadPricesErrors(t *testing.T) {
	tests := []struct {
		name string
		csv  string
	}{
		{"empty", ""},
		{"bad header", "t,b,s\n0,8,7\n"},
		{"ragged", "slot,buy,sell\n0,8\n"},
		{"bad buy", "slot,buy,sell\n0,x,7\n"},
		{"bad sell", "slot,buy,sell\n0,8,x\n"},
		{"sell >= buy", "slot,buy,sell\n0,8,9\n"},
		{"zero buy", "slot,buy,sell\n0,0,0\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadPrices(strings.NewReader(tt.csv)); err == nil {
				t.Error("expected error")
			}
		})
	}
}
