// Package trace reads and writes the simulator's input series as CSV so
// that real traces — actual passenger counts, actual EU allowance quotes —
// can replace the synthetic generators without touching any algorithm code.
//
// Formats:
//
//   - Workload CSV: header "slot,edge0,edge1,...", one row per slot, integer
//     arrival counts M_i^t.
//   - Price CSV: header "slot,buy,sell", one row per slot, float prices with
//     sell < buy on every row.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/carbonedge/carbonedge/internal/market"
)

// WriteWorkload encodes a workload matrix (workload[t][i] = M_i^t) as CSV.
func WriteWorkload(w io.Writer, workload [][]int) error {
	if len(workload) == 0 {
		return fmt.Errorf("trace: empty workload")
	}
	edges := len(workload[0])
	if edges == 0 {
		return fmt.Errorf("trace: workload has no edges")
	}
	cw := csv.NewWriter(w)
	header := make([]string, edges+1)
	header[0] = "slot"
	for i := 0; i < edges; i++ {
		header[i+1] = "edge" + strconv.Itoa(i)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, edges+1)
	for t, counts := range workload {
		if len(counts) != edges {
			return fmt.Errorf("trace: slot %d has %d edges, want %d", t, len(counts), edges)
		}
		row[0] = strconv.Itoa(t)
		for i, m := range counts {
			row[i+1] = strconv.Itoa(m)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadWorkload decodes a workload CSV.
func ReadWorkload(r io.Reader) ([][]int, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: parse workload csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: workload csv needs a header and at least one row")
	}
	edges := len(records[0]) - 1
	if edges < 1 || records[0][0] != "slot" {
		return nil, fmt.Errorf("trace: bad workload header %v", records[0])
	}
	out := make([][]int, 0, len(records)-1)
	for rowIdx, rec := range records[1:] {
		if len(rec) != edges+1 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", rowIdx+1, len(rec), edges+1)
		}
		counts := make([]int, edges)
		for i := 0; i < edges; i++ {
			v, err := strconv.Atoi(rec[i+1])
			if err != nil {
				return nil, fmt.Errorf("trace: row %d edge %d: %w", rowIdx+1, i, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("trace: row %d edge %d: negative count %d", rowIdx+1, i, v)
			}
			counts[i] = v
		}
		out = append(out, counts)
	}
	return out, nil
}

// WritePrices encodes a price series as CSV.
func WritePrices(w io.Writer, p *market.Prices) error {
	if p == nil || p.Horizon() == 0 {
		return fmt.Errorf("trace: empty price series")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "buy", "sell"}); err != nil {
		return err
	}
	for t := 0; t < p.Horizon(); t++ {
		rec := []string{
			strconv.Itoa(t),
			strconv.FormatFloat(p.Buy[t], 'g', -1, 64),
			strconv.FormatFloat(p.Sell[t], 'g', -1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPrices decodes a price CSV, validating that every sell price stays
// below its buy price (the structure the offline optimum relies on).
func ReadPrices(r io.Reader) (*market.Prices, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: parse price csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("trace: price csv needs a header and at least one row")
	}
	if len(records[0]) != 3 || records[0][0] != "slot" {
		return nil, fmt.Errorf("trace: bad price header %v", records[0])
	}
	p := &market.Prices{
		Buy:  make([]float64, 0, len(records)-1),
		Sell: make([]float64, 0, len(records)-1),
	}
	for rowIdx, rec := range records[1:] {
		if len(rec) != 3 {
			return nil, fmt.Errorf("trace: row %d has %d fields, want 3", rowIdx+1, len(rec))
		}
		buy, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d buy: %w", rowIdx+1, err)
		}
		sell, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d sell: %w", rowIdx+1, err)
		}
		if buy <= 0 || sell <= 0 || sell >= buy {
			return nil, fmt.Errorf("trace: row %d: invalid prices buy=%g sell=%g", rowIdx+1, buy, sell)
		}
		p.Buy = append(p.Buy, buy)
		p.Sell = append(p.Sell, sell)
	}
	return p, nil
}
