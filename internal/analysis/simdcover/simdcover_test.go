package simdcover_test

import (
	"runtime"
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/simdcover"
)

func TestSimdcover(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		t.Skip("testdata plants amd64 asm declarations; on other arches only the generic files load")
	}
	analyzertest.Run(t, simdcover.Analyzer, "ok", "bad")
}
