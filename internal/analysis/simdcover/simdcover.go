// Package simdcover makes the SIMD bit-identity contract structural. Every
// assembly-declared kernel (a bodyless func declaration, e.g. in
// simd_amd64.go) must be covered twice:
//
//   - a generic fallback with an identical signature must exist in a
//     build-tag-excluded file of the same package (simd_generic.go), so
//     non-amd64 builds keep the kernel semantics — names may differ, since
//     kernels dispatch through wrappers (axpyAVX2 falls back to axpySIMD);
//   - some simd*_test.go in the package must reference the kernel by name,
//     pinning it against the scalar reference bit for bit.
//
// The check is architecture-universal: kernels declared in files the
// current build excludes (an arm64 NEON tier analyzed from an amd64 host,
// and vice versa) are raw-parsed from disk and held to the same two rules,
// so adding a tier for another architecture cannot silently skip the
// contract. An excluded kernel's fallback must live in a different file
// than the kernel's own declaration file — a dispatch wrapper beside the
// declaration is part of the same excluded build, not a fallback.
//
// The analyzer reads the excluded files and test files straight from disk
// (they are, by construction, outside the loaded build), compares
// signatures textually, and reports kernels whose fallback or equivalence
// test is missing. Kernels with no meaningful scalar twin (register-tiled
// drivers that fall back through a different code path, CPU feature probes)
// carry //lint:allow simdcover <reason> — for excluded files, on the
// declaration's own line or the line above, resolved here since the
// carbonlint suppression pass only sees loaded files.
package simdcover

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "simdcover",
	Doc: "every asm-declared kernel needs a build-tagged generic fallback with " +
		"an identical signature and a simd*_test.go reference pinning bit-for-bit " +
		"equivalence with the scalar semantics",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	var kernels []*ast.FuncDecl
	loaded := make(map[string]bool)
	dir := ""
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		loaded[filepath.Base(name)] = true
		if dir == "" {
			dir = filepath.Dir(name)
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body == nil {
				kernels = append(kernels, fd)
			}
		}
	}
	if dir == "" {
		return nil, nil
	}

	scan, err := scanPackageDir(dir, loaded, pass.Fset)
	if err != nil {
		return nil, err
	}
	if len(kernels) == 0 && len(scan.kernels) == 0 {
		return nil, nil
	}
	for _, fd := range kernels {
		sig := renderFuncType(fd.Type)
		if len(scan.fallbacks[sig]) == 0 {
			pass.Reportf(fd.Pos(),
				"asm-declared %s has no build-tagged generic fallback with signature %s; non-amd64 builds lose the kernel semantics",
				fd.Name.Name, sig)
		}
		if !scan.testIdents[fd.Name.Name] {
			pass.Reportf(fd.Pos(),
				"asm-declared %s is not referenced by any simd*_test.go; add an equivalence test pinning it against the scalar reference",
				fd.Name.Name)
		}
	}
	for _, k := range scan.kernels {
		sig := renderFuncType(k.decl.Type)
		if !fallbackOutside(scan.fallbacks[sig], k.file) {
			pass.Reportf(k.decl.Pos(),
				"asm-declared %s (excluded from this build) has no build-tagged generic fallback with signature %s outside its own file; other-architecture builds lose the kernel semantics",
				k.decl.Name.Name, sig)
		}
		if !scan.testIdents[k.decl.Name.Name] {
			pass.Reportf(k.decl.Pos(),
				"asm-declared %s (excluded from this build) is not referenced by any simd*_test.go; add an equivalence test pinning it against the scalar reference",
				k.decl.Name.Name)
		}
	}
	return nil, nil
}

// fallbackOutside reports whether sig's fallback set contains a file other
// than the kernel's own declaration file.
func fallbackOutside(files map[string]bool, own string) bool {
	for f := range files {
		if f != own {
			return true
		}
	}
	return false
}

// extKernel is a bodyless declaration found in a build-tag-excluded file:
// an asm kernel of another architecture, held to the same coverage rules.
type extKernel struct {
	decl *ast.FuncDecl
	file string // base name of the declaring file
}

type packageScan struct {
	// fallbacks maps a canonical signature to the set of excluded files
	// declaring a bodied function with it.
	fallbacks map[string]map[string]bool
	// testIdents is every identifier referenced by any simd*_test.go,
	// loaded or not (arm64 test files pin arm64 kernels; the reference
	// check must see them from any host).
	testIdents map[string]bool
	// kernels are the bodyless declarations of excluded files, minus those
	// carrying a //lint:allow simdcover directive.
	kernels []extKernel
}

// scanPackageDir raw-parses the package files outside the loaded build:
// build-tag-excluded sources contribute fallback signatures and
// other-architecture kernel declarations, simd*_test.go files contribute
// the referenced identifier set. Excluded files are parsed into the pass's
// FileSet so reported positions point at the real declaration.
func scanPackageDir(dir string, loaded map[string]bool, fset *token.FileSet) (*packageScan, error) {
	scan := &packageScan{
		fallbacks:  make(map[string]map[string]bool),
		testIdents: make(map[string]bool),
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		isSimdTest := isTest && strings.HasPrefix(name, "simd")
		if loaded[name] || (isTest && !isSimdTest) {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if perr != nil {
			continue // a file the build also can't read is not this analyzer's finding
		}
		if isSimdTest {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					scan.testIdents[id.Name] = true
				}
				return true
			})
			continue
		}
		allowed := allowLines(fset, f)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil {
				continue
			}
			if fd.Body != nil {
				sig := renderFuncType(fd.Type)
				if scan.fallbacks[sig] == nil {
					scan.fallbacks[sig] = make(map[string]bool)
				}
				scan.fallbacks[sig][name] = true
				continue
			}
			line := fset.Position(fd.Pos()).Line
			if allowed[line] || allowed[line-1] {
				continue
			}
			scan.kernels = append(scan.kernels, extKernel{decl: fd, file: name})
		}
	}
	return scan, nil
}

// allowLines collects the lines of f carrying a //lint:allow simdcover
// directive (line or block form; a nested "//" ends the payload, mirroring
// the carbonlint suppression grammar). Excluded files never reach the
// normal suppression pass — it only sees loaded syntax — so the analyzer
// resolves its own directives here. A directive covers its own line and the
// line below, like suppression everywhere else.
func allowLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			switch {
			case strings.HasPrefix(text, "//"):
				text = text[2:]
			case strings.HasPrefix(text, "/*"):
				text = strings.TrimSuffix(text[2:], "*/")
			}
			text, _, _ = strings.Cut(text, "//")
			fields := strings.Fields(text)
			if len(fields) >= 3 && fields[0] == "lint:allow" && fields[1] == "simdcover" {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// renderFuncType canonicalizes a signature as "(types...)(results...)" with
// parameter names dropped, so declarations can be compared across files
// without type information (the excluded files have none by definition).
func renderFuncType(ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteByte('(')
	writeFieldTypes(&b, ft.Params)
	b.WriteString(")(")
	writeFieldTypes(&b, ft.Results)
	b.WriteByte(')')
	return b.String()
}

func writeFieldTypes(b *strings.Builder, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		var buf bytes.Buffer
		printer.Fprint(&buf, token.NewFileSet(), f.Type)
		ts := buf.String()
		for i := 0; i < n; i++ {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(ts)
			first = false
		}
	}
}
