// Package simdcover makes the SIMD bit-identity contract structural. Every
// assembly-declared kernel (a bodyless func declaration, e.g. in
// simd_amd64.go) must be covered twice:
//
//   - a generic fallback with an identical signature must exist in a
//     build-tag-excluded file of the same package (simd_generic.go), so
//     non-amd64 builds keep the kernel semantics — names may differ, since
//     kernels dispatch through wrappers (axpyAVX2 falls back to axpySIMD);
//   - some simd*_test.go in the package must reference the kernel by name,
//     pinning it against the scalar reference bit for bit.
//
// The analyzer reads the excluded files and test files straight from disk
// (they are, by construction, outside the loaded build), compares
// signatures textually, and reports kernels whose fallback or equivalence
// test is missing. Kernels with no meaningful scalar twin (register-tiled
// drivers that fall back through a different code path) carry
// //lint:allow simdcover <reason>.
package simdcover

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "simdcover",
	Doc: "every asm-declared kernel needs a build-tagged generic fallback with " +
		"an identical signature and a simd*_test.go reference pinning bit-for-bit " +
		"equivalence with the scalar semantics",
	Run: run,
}

func run(pass *analysis.Pass) (any, error) {
	var kernels []*ast.FuncDecl
	loaded := make(map[string]bool)
	dir := ""
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		loaded[filepath.Base(name)] = true
		if dir == "" {
			dir = filepath.Dir(name)
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body == nil {
				kernels = append(kernels, fd)
			}
		}
	}
	if len(kernels) == 0 {
		return nil, nil
	}

	fallbacks, testIdents, err := scanPackageDir(dir, loaded)
	if err != nil {
		return nil, err
	}
	for _, fd := range kernels {
		sig := renderFuncType(fd.Type)
		if !fallbacks[sig] {
			pass.Reportf(fd.Pos(),
				"asm-declared %s has no build-tagged generic fallback with signature %s; non-amd64 builds lose the kernel semantics",
				fd.Name.Name, sig)
		}
		if !testIdents[fd.Name.Name] {
			pass.Reportf(fd.Pos(),
				"asm-declared %s is not referenced by any simd*_test.go; add an equivalence test pinning it against the scalar reference",
				fd.Name.Name)
		}
	}
	return nil, nil
}

// scanPackageDir raw-parses the package files outside the loaded build:
// build-tag-excluded sources contribute fallback signatures, simd*_test.go
// files contribute the referenced identifier set.
func scanPackageDir(dir string, loaded map[string]bool) (fallbacks, testIdents map[string]bool, err error) {
	fallbacks = make(map[string]bool)
	testIdents = make(map[string]bool)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		isSimdTest := isTest && strings.HasPrefix(name, "simd")
		if loaded[name] || (isTest && !isSimdTest) {
			continue
		}
		f, perr := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if perr != nil {
			continue // a file the build also can't read is not this analyzer's finding
		}
		if isSimdTest {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					testIdents[id.Name] = true
				}
				return true
			})
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil && fd.Recv == nil {
				fallbacks[renderFuncType(fd.Type)] = true
			}
		}
	}
	return fallbacks, testIdents, nil
}

// renderFuncType canonicalizes a signature as "(types...)(results...)" with
// parameter names dropped, so declarations can be compared across files
// without type information (the excluded files have none by definition).
func renderFuncType(ft *ast.FuncType) string {
	var b strings.Builder
	b.WriteByte('(')
	writeFieldTypes(&b, ft.Params)
	b.WriteString(")(")
	writeFieldTypes(&b, ft.Results)
	b.WriteByte(')')
	return b.String()
}

func writeFieldTypes(b *strings.Builder, fl *ast.FieldList) {
	if fl == nil {
		return
	}
	first := true
	for _, f := range fl.List {
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		var buf bytes.Buffer
		printer.Fprint(&buf, token.NewFileSet(), f.Type)
		ts := buf.String()
		for i := 0; i < n; i++ {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(ts)
			first = false
		}
	}
}
