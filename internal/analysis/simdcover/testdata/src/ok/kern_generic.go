//go:build !amd64

package ok

func addSIMD(x, y []float64) {
	for i := range x {
		x[i] += y[i]
	}
}
