//go:build !amd64

package ok

func qdotInt8SIMD(out []int32, a, b []int8, n, k int) {
	for i := 0; i < n; i++ {
		var acc int32
		for j := 0; j < k; j++ {
			acc += int32(a[j]) * int32(b[i*k+j])
		}
		out[i] = acc
	}
}
