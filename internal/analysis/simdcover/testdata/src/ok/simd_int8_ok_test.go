//go:build amd64

package ok

import "testing"

func TestQdotInt8Equivalence(t *testing.T) {
	out := []int32{0}
	qdotInt8AVX2(out, []int8{1}, []int8{2}, 1, 1)
	_ = t
}
