//go:build arm64

package ok

import "testing"

// TestQdotInt8NEONPinned is the arm64 counterpart of the amd64 pinning
// test: it only runs on arm64 hosts, but the reference check reads it from
// disk on every architecture, so the NEON kernel counts as covered.
func TestQdotInt8NEONPinned(t *testing.T) {
	qdotInt8NEON(nil, nil, nil, 0, 0)
	_ = t
}
