//go:build arm64

package ok

// qdotInt8NEON is the arm64 tier of the int8 kernel family. On an amd64
// test host this file is excluded from the build, so the kernel is checked
// through the raw-parse path: its fallback is qkern_generic.go's
// qdotInt8SIMD (identical signature, different file) and its pinning test
// is simd_arm64_ok_test.go (raw-parsed regardless of build tags).
func qdotInt8NEON(out []int32, a, b []int8, n, k int)

// cpuProbeARM64 mirrors the feature-probe exemption: no scalar twin exists,
// and the directive must be honored by the excluded-file scan itself.
func cpuProbeARM64() (a, b uint64) //lint:allow simdcover CPU feature probe, no scalar semantics to mirror
