//go:build amd64

// Package ok mirrors the nn SIMD layout: a bodyless asm kernel, a
// dispatching wrapper, a !amd64 fallback with the kernel's signature, and a
// simd*_test.go pinning the kernel. Nothing here should be flagged.
package ok

// addAVX2 is implemented in kern_amd64.s.
func addAVX2(x, y []float64)

func addSIMD(x, y []float64) { addAVX2(x, y) }
