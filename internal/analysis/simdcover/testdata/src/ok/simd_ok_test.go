//go:build amd64

package ok

import "testing"

func TestAddEquivalence(t *testing.T) {
	x := []float64{1}
	addAVX2(x, []float64{2})
	if x[0] != 3 {
		t.Fatal(x[0])
	}
}
