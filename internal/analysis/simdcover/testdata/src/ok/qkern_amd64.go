//go:build amd64

package ok

// qdotInt8AVX2 mirrors the int8 GEMM kernel family: int32 accumulators,
// int8 operands. Covered by the generic twin and the pinning test below.
func qdotInt8AVX2(out []int32, a, b []int8, n, k int)

func qdotInt8SIMD(out []int32, a, b []int8, n, k int) { qdotInt8AVX2(out, a, b, n, k) }
