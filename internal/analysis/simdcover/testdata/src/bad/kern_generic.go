//go:build !amd64

package bad

func subSIMD(x, y []float64) bool { return len(x) == len(y) }

func dotSIMD(out, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		out[i] = a[i] * b[i]
	}
}

func qdotInt8SIMD(out []int64, a, b []int8, n, k int) {
	for i := range out {
		out[i] = int64(n + k)
	}
}
