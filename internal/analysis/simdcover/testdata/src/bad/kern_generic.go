//go:build !amd64

package bad

func subSIMD(x, y []float64) bool { return len(x) == len(y) }

func dotSIMD(out, a, b []float64, n int) {
	for i := 0; i < n; i++ {
		out[i] = a[i] * b[i]
	}
}
