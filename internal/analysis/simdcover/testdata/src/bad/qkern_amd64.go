//go:build amd64

package bad

// qdotInt8SSE2's generic twin drifted: int64 accumulators instead of int32,
// so signature matching must reject it even though the name family matches.
func qdotInt8SSE2(out []int32, a, b []int8, n, k int) // want `qdotInt8SSE2 has no build-tagged generic fallback`
