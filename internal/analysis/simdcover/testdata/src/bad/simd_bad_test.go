//go:build amd64

package bad

import "testing"

func TestSubEquivalence(t *testing.T) {
	subAVX2(nil, nil)
	_ = t
}
