//go:build amd64

package bad

import "testing"

func TestSubEquivalence(t *testing.T) {
	subAVX2(nil, nil)
	_ = t
}

func TestQdotInt8Pinned(t *testing.T) {
	qdotInt8SSE2(nil, nil, nil, 0, 0)
	_ = t
}
