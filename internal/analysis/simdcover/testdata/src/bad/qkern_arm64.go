//go:build arm64

package bad

// Arm64 violations, checked from any host through the excluded-file scan.

// mulNEON has no generic twin anywhere and no pinning test.
func mulNEON(x []float32, s float32) // want `mulNEON .* has no build-tagged generic fallback` `mulNEON .* is not referenced by any simd`

// dotNEON is pinned by simd_neon_bad_test.go, but the only bodied function
// with its signature sits in this same file — a dispatch wrapper in the
// kernel's own build is not a fallback.
func dotNEON(out []float32, a, b []float32, n int) // want `dotNEON .* has no build-tagged generic fallback .* outside its own file`

func dotNEONSIMD(out []float32, a, b []float32, n int) {
	dotNEON(out, a, b, n)
}
