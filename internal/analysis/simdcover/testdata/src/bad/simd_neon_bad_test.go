//go:build arm64

package bad

import "testing"

func TestDotNEONPinned(t *testing.T) {
	dotNEON(nil, nil, nil, 0)
	_ = t
}
