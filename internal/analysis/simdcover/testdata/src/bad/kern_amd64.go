//go:build amd64

// Package bad plants one violation per rule: a kernel with neither fallback
// nor test, one whose fallback signature drifted, one nobody pins, and one
// whose missing scalar twin is deliberate and annotated.
package bad

// mulAVX2 has no generic twin at all and no pinning test.
func mulAVX2(x []float64, s float64) // want `mulAVX2 has no build-tagged generic fallback` `mulAVX2 is not referenced by any simd`

// subAVX2 is pinned by a test, but its fallback grew an extra result.
func subAVX2(x, y []float64) // want `subAVX2 has no build-tagged generic fallback`

// dotAVX2 falls back correctly, but nothing pins it bit for bit.
func dotAVX2(out, a, b []float64, n int) // want `dotAVX2 is not referenced by any simd`

// tile4x8AVX2 deliberately has no scalar twin: on !amd64 its quad driver
// returns zero rows handled and the row path takes over.
func tile4x8AVX2(out []float64, on int) //lint:allow simdcover register tile falls back through the row path
