package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// A Package bundles everything the runner needs about one loaded package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	// ExportFile is the build-cache path of the package's compiled export
	// data, as reported by `go list -export`. The path embeds the build
	// action ID — a hash of the package's sources and the export data of
	// everything it imports — which is what the lint cache keys on.
	// Empty for testdata packages.
	ExportFile string
}

// listedPackage is the subset of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// goList runs `go list -export -deps -json` for the patterns and decodes the
// JSON stream. Export data is compiled into the build cache as a side
// effect, which is exactly what makeResolver consumes.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{"list", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listedPackage)
		if err := dec.Decode(lp); err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, lp)
	}
	return pkgs, nil
}

// errListed formats a `go list` per-package error.
func errListed(lp *listedPackage) error {
	return fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
}

// makeResolver builds a types.Importer that satisfies imports from the
// export data `go list -export` wrote to the build cache. This is the same
// mechanism `go vet` uses: only the package under analysis is type-checked
// from source; every dependency — stdlib included — is loaded from its
// compiled export file, so analysis works offline and without x/tools.
func makeResolver(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok || file == "" {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// typeCheck parses and type-checks one package directory.
func typeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, goFiles []string) (*Package, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var tcErrs []error
	cfg := &types.Config{
		Importer: imp,
		Error:    func(err error) { tcErrs = append(tcErrs, err) },
	}
	tpkg, _ := cfg.Check(pkgPath, fset, files, info)
	if len(tcErrs) > 0 {
		msgs := make([]string, 0, len(tcErrs))
		for _, e := range tcErrs {
			msgs = append(msgs, e.Error())
		}
		return nil, fmt.Errorf("analysis: type-checking %s:\n\t%s", pkgPath, strings.Join(msgs, "\n\t"))
	}
	return &Package{
		PkgPath: pkgPath,
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}

// Load lists the packages matching patterns (relative to dir, e.g. "./...")
// and returns them parsed and fully type-checked, sorted by import path.
// Test files are excluded: the determinism invariants carbonlint enforces
// govern what ships, and tests legitimately use ad-hoc seeds and wall-clock
// timeouts.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, errListed(lp)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	fset := token.NewFileSet()
	imp := makeResolver(fset, exports)
	pkgs := make([]*Package, 0, len(targets))
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.ExportFile = lp.Export
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].PkgPath < pkgs[j].PkgPath })
	return pkgs, nil
}

// LoadTestdata parses and type-checks testdata packages for analyzertest.
// Each rel is a path under filepath.Join(testdata, "src") and becomes the
// package's PkgPath verbatim, so a testdata package placed at
// src/internal/numeric exercises path-based analyzer exemptions. Imports
// are resolved by shelling out to `go list -export` from moduleDir, so
// testdata may import the standard library and the enclosing module alike.
func LoadTestdata(moduleDir, testdata string, rels ...string) ([]*Package, error) {
	fset := token.NewFileSet()
	type parsed struct {
		rel, dir string
		files    []*ast.File
		names    []string
	}
	imports := make(map[string]bool)
	var all []parsed
	for _, rel := range rels {
		dir := filepath.Join(testdata, "src", filepath.FromSlash(rel))
		entries, err := os.ReadDir(dir)
		if err != nil {
			return nil, fmt.Errorf("analysis: testdata package %q: %v", rel, err)
		}
		p := parsed{rel: rel, dir: dir}
		for _, e := range entries {
			if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
				continue
			}
			// Honor build constraints (//go:build tags and _GOOS/_GOARCH
			// file suffixes) exactly as `go list` would, so testdata can
			// carry e.g. an amd64 asm declaration alongside its !amd64
			// generic fallback without declaring the symbol twice.
			if match, err := build.Default.MatchFile(dir, e.Name()); err != nil || !match {
				continue
			}
			f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing testdata %s/%s: %v", rel, e.Name(), err)
			}
			for _, spec := range f.Imports {
				imports[strings.Trim(spec.Path.Value, `"`)] = true
			}
			p.files = append(p.files, f)
			p.names = append(p.names, e.Name())
		}
		if len(p.files) == 0 {
			return nil, fmt.Errorf("analysis: testdata package %q has no Go files", rel)
		}
		all = append(all, p)
	}

	exports := make(map[string]string)
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		listed, err := goList(moduleDir, paths)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.Error != nil {
				return nil, fmt.Errorf("analysis: go list: %s: %s", lp.ImportPath, lp.Error.Err)
			}
			if lp.Export != "" {
				exports[lp.ImportPath] = lp.Export
			}
		}
	}
	imp := makeResolver(fset, exports)
	pkgs := make([]*Package, 0, len(all))
	for _, p := range all {
		files := make([]string, len(p.names))
		copy(files, p.names)
		pkg, err := typeCheck(fset, imp, p.rel, p.dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}
