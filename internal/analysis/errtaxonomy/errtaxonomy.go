// Package errtaxonomy keeps internal/deploy's transient-vs-fatal error
// taxonomy airtight. The retry/reconnect/resume machinery (PR 3) decides an
// error's fate by classifying it — ProtocolError and EdgeError are fatal,
// Transient recognizes retryable link failures — so an error that reaches a
// wire boundary unclassified silently becomes fatal and dodges the retry
// budget. The analyzer finds every errors.New and every fmt.Errorf that
// does not wrap with %w, and flags those constructed in wire-covered
// functions: functions that reach ReadMessage/WriteMessage/Transient
// through same-package static calls (being one of the wire functions counts
// too). Pre-wire validation helpers that never touch the wire stay exempt,
// so constructors can keep returning plain config errors.
package errtaxonomy

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "errtaxonomy",
	Doc: "errors constructed on wire-covered paths (functions reaching " +
		"ReadMessage/WriteMessage/Transient through same-package calls) must be " +
		"classified: wrap with %w, or construct ProtocolError/EdgeError/Transientf " +
		"so retry machinery can tell transient from fatal",
	Run:    run,
	Global: true,
	Select: selectCovered,
}

// wireNames are the function names that anchor wire coverage.
var wireNames = [...]string{"ReadMessage", "WriteMessage", "Transient"}

// selectCovered computes, over the merged program graph, the set of
// functions that reach a wire function through same-package static calls,
// and keeps only candidates constructed inside that set.
func selectCovered(g *analysis.Graph) func(string) (string, bool) {
	covered := make(map[string]bool)
	var queue []string
	mark := func(key string) {
		if key != "" && !covered[key] {
			covered[key] = true
			queue = append(queue, key)
		}
	}
	// Seeds: the wire functions themselves, and every function that calls a
	// same-package wire function directly.
	for key, f := range g.Funcs {
		if isWireKey(key, f.PkgPath) {
			mark(key)
			continue
		}
		for _, callee := range f.Calls {
			if isWireKey(callee, f.PkgPath) {
				mark(key)
				break
			}
		}
	}
	// Propagate to same-package callers: if f calls a covered same-package
	// function, f's errors travel the same retry paths.
	callers := make(map[string][]string)
	for key, f := range g.Funcs {
		for _, callee := range f.Calls {
			if cf := g.Funcs[callee]; cf != nil && cf.PkgPath == f.PkgPath {
				callers[callee] = append(callers[callee], key)
			}
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, caller := range callers[cur] {
			mark(caller)
		}
	}
	return func(funcKey string) (string, bool) {
		return "", covered[funcKey]
	}
}

// isWireKey reports whether key names a package-level wire function in pkg.
func isWireKey(key, pkgPath string) bool {
	for _, name := range wireNames {
		if key == pkgPath+"."+name {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkConstructions(pass, fd, analysis.FuncKeyOf(obj))
		}
	}
	return nil, nil
}

func checkConstructions(pass *analysis.Pass, fd *ast.FuncDecl, funcKey string) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok {
			return true
		}
		switch fn.FullName() {
		case "errors.New":
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "errors.New constructs an unclassified error on a wire-covered path; " +
					"use ProtocolError/EdgeError or Transientf so retry machinery can classify it",
				FuncKey: funcKey,
			})
		case "fmt.Errorf":
			if len(call.Args) == 0 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				pass.Report(analysis.Diagnostic{
					Pos: call.Pos(),
					Message: "fmt.Errorf with a non-literal format on a wire-covered path; " +
						"the analyzer cannot prove it wraps with %w — use a literal format or a classified constructor",
					FuncKey: funcKey,
				})
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil || strings.Contains(format, "%w") {
				return true
			}
			pass.Report(analysis.Diagnostic{
				Pos: call.Pos(),
				Message: "fmt.Errorf without %w constructs an unclassified error on a wire-covered path; " +
					"wrap a classified error with %w or use ProtocolError/EdgeError/Transientf",
				FuncKey: funcKey,
			})
		}
		return true
	})
}
