// Package b has no wire functions, so nothing here is covered: plain error
// construction stays legal in packages that never touch the deploy wire.
package b

import (
	"errors"
	"fmt"
)

func mk() error { return errors.New("fine") }

func wrapless(n int) error { return fmt.Errorf("count %d", n) }
