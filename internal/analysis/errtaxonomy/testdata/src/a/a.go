// Package a defines its own wire functions so coverage anchors locally:
// step calls the wire directly, caller reaches it transitively, validate
// never touches it.
package a

import (
	"errors"
	"fmt"
	"io"
)

func ReadMessage(r io.Reader) (int, error)  { return 0, nil }
func WriteMessage(w io.Writer, v int) error { return nil }
func Transient(err error) bool              { return false }

func step(r io.Reader) error {
	_, err := ReadMessage(r)
	if err != nil {
		if Transient(err) {
			return fmt.Errorf("retrying: %w", err) // wraps with %w: clean
		}
		return errors.New("link down") // want `errors.New constructs an unclassified error`
	}
	return nil
}

func caller(r io.Reader) error {
	if err := step(r); err != nil {
		return fmt.Errorf("edge gone") // want `fmt.Errorf without %w`
	}
	return nil
}

func validate(n int) error {
	if n < 0 {
		return fmt.Errorf("negative count %d", n) // clean: never reaches the wire
	}
	return nil
}

func dynamic(format string, r io.Reader) error {
	_, _ = ReadMessage(r)
	return fmt.Errorf(format) // want `non-literal format`
}

func allowed(r io.Reader) error {
	_, _ = ReadMessage(r)
	return errors.New("forwarded reason") //lint:allow errtaxonomy reason is forwarded verbatim from the peer
}

func spare(n int) int {
	return n + 1 //lint:allow errtaxonomy stale excuse // want `unused directive`
}
