package errtaxonomy_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/errtaxonomy"
)

func TestErrtaxonomy(t *testing.T) {
	analyzertest.Run(t, errtaxonomy.Analyzer, "a", "b")
}
