package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Call-graph layer: a whole-program, type-aware static call graph over the
// loaded packages, built once per carbonlint run and consumed by the
// program-wide analyzers (hotalloc's hot-path reachability). Each package
// contributes a serializable []*GraphFunc summary (so the lint cache can
// replay unchanged packages without re-type-checking them); MergeGraph
// stitches the summaries into one Graph.
//
// Resolution is deliberately conservative:
//
//   - Static calls (pkg.F(), x.Method() on a concrete receiver, T.Method(x))
//     produce one edge to the named function.
//   - Interface method calls produce edges to every analyzed method with the
//     same name and the same external signature (class-hierarchy analysis
//     keyed on name+signature: precise enough to separate
//     engine.EdgeStepper.Step from trading's unrelated Step methods).
//   - Dynamic calls through function values (fields, parameters, variables,
//     method values) produce edges to every function whose value is taken
//     anywhere in the program with a matching signature; function literals
//     passed around as values count as their enclosing declaration.
//
// Functions are keyed canonically as "pkgpath.Name" or
// "pkgpath.Receiver.Name"; keys computed from source-checked packages and
// from export data agree, which is what stitches cross-package edges.

// HotrootPrefix marks a function declaration as a hot-path root: everything
// statically reachable from it must satisfy the hotalloc contract. Written
// in the declaration's doc comment; an optional trailing note may say why.
//
//	//lint:hotroot steady-state slot stepping must not allocate
const HotrootPrefix = "lint:hotroot"

// ColdPrefix marks a function declaration as deliberately off the hot path:
// hotalloc neither checks its body nor traverses its callees. The reason is
// mandatory — pruning the reachability fence must explain itself.
//
//	//lint:cold wire stepper; the JSON framing allocates by design
const ColdPrefix = "lint:cold"

// A GraphFunc is one analyzed function's contribution to the program call
// graph. All fields are plain data so package summaries round-trip through
// the lint cache as JSON.
type GraphFunc struct {
	// Key is the canonical function key ("pkg.Name" or "pkg.Recv.Name").
	Key string
	// PkgPath is the declaring package's import path, so analyzers can
	// scope graph walks to package boundaries without re-parsing Key.
	PkgPath string
	// Display is the short human name used when printing call paths.
	Display string
	// Pos positions the declaration (for directive diagnostics).
	Pos token.Position
	// Hotroot and Cold record //lint:hotroot and //lint:cold directives on
	// the declaration.
	Hotroot bool
	Cold    bool
	// MethodSig is the name+signature index entry ("Name\x00(params)(results)")
	// when the function is a method — the CHA key interface calls resolve
	// against. Empty for plain functions.
	MethodSig string
	// Calls lists static callee keys (including external ones, which simply
	// have no node and act as leaves).
	Calls []string
	// IfaceCalls lists interface method call sites as name+signature entries.
	IfaceCalls []string
	// DynCalls lists the signatures of calls through function values.
	DynCalls []string
	// TakesAddr lists (key, signature) pairs of functions whose value this
	// function's body takes — the candidate targets of dynamic calls.
	TakesAddr []AddrRef
}

// AddrRef records one address-taken function value.
type AddrRef struct {
	Key string
	Sig string
}

// Graph is the merged whole-program call graph.
type Graph struct {
	// Funcs indexes every analyzed function by canonical key.
	Funcs map[string]*GraphFunc

	methodIndex map[string][]string // MethodSig -> keys
	addrIndex   map[string][]string // signature -> address-taken keys
}

// MergeGraph stitches per-package summaries into one program graph.
func MergeGraph(funcLists ...[]*GraphFunc) *Graph {
	g := &Graph{
		Funcs:       make(map[string]*GraphFunc),
		methodIndex: make(map[string][]string),
		addrIndex:   make(map[string][]string),
	}
	for _, funcs := range funcLists {
		for _, f := range funcs {
			g.Funcs[f.Key] = f
		}
	}
	// Indexes are built over the deduplicated node set, in sorted order so
	// traversal (and therefore reported paths) is deterministic.
	keys := make([]string, 0, len(g.Funcs))
	for k := range g.Funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	seenAddr := make(map[AddrRef]bool)
	for _, k := range keys {
		f := g.Funcs[k]
		if f.MethodSig != "" {
			g.methodIndex[f.MethodSig] = append(g.methodIndex[f.MethodSig], f.Key)
		}
		for _, ref := range f.TakesAddr {
			if seenAddr[ref] {
				continue
			}
			seenAddr[ref] = true
			g.addrIndex[ref.Sig] = append(g.addrIndex[ref.Sig], ref.Key)
		}
	}
	for _, targets := range g.addrIndex {
		sort.Strings(targets)
	}
	return g
}

// HotRoots returns the keys of every //lint:hotroot function, sorted.
func (g *Graph) HotRoots() []string {
	var roots []string
	for k, f := range g.Funcs {
		if f.Hotroot {
			roots = append(roots, k)
		}
	}
	sort.Strings(roots)
	return roots
}

// Reachable computes the set of functions reachable from roots, never
// entering or traversing functions marked //lint:cold. The returned parent
// map contains, for every reached non-root function, the function that first
// reached it in deterministic BFS order — CallPath reconstructs example
// chains from it.
func (g *Graph) Reachable(roots []string) (reached map[string]bool, parent map[string]string) {
	reached = make(map[string]bool)
	parent = make(map[string]string)
	queue := make([]string, 0, len(roots))
	for _, r := range roots {
		f := g.Funcs[r]
		if f == nil || f.Cold || reached[r] {
			continue
		}
		reached[r] = true
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		f := g.Funcs[cur]
		if f == nil {
			continue
		}
		var callees []string
		callees = append(callees, f.Calls...)
		for _, ms := range f.IfaceCalls {
			callees = append(callees, g.methodIndex[ms]...)
		}
		for _, sig := range f.DynCalls {
			callees = append(callees, g.addrIndex[sig]...)
		}
		for _, next := range callees {
			nf := g.Funcs[next]
			if nf == nil || nf.Cold || reached[next] {
				continue
			}
			reached[next] = true
			parent[next] = cur
			queue = append(queue, next)
		}
	}
	return reached, parent
}

// CallPath renders an example root→fn chain from a Reachable parent map,
// using display names, e.g. "Shard.Step → safeStep → scenarioStepper.Step".
// Long chains elide the middle.
func (g *Graph) CallPath(parent map[string]string, key string) string {
	var chain []string
	for cur := key; cur != ""; cur = parent[cur] {
		name := cur
		if f := g.Funcs[cur]; f != nil {
			name = f.Display
		}
		chain = append(chain, name)
		if len(chain) > 32 {
			break // defensive: parent maps from Reachable are acyclic
		}
	}
	// chain is fn..root; reverse it.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	if len(chain) > 5 {
		chain = append(chain[:2:2], append([]string{"…"}, chain[len(chain)-2:]...)...)
	}
	return strings.Join(chain, " → ")
}

// funcKeyOf returns the canonical key for a function object, or "" when the
// object has no sensible key (builtins).
func funcKeyOf(fn *types.Func) string {
	fn = fn.Origin()
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return pkg + "." + name + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// displayNameOf is the short human form of a function ("Recv.Name" / "Name").
func displayNameOf(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if name := recvTypeName(sig.Recv().Type()); name != "" {
			return name + "." + fn.Name()
		}
	}
	return fn.Name()
}

// recvTypeName names a method receiver's defined type ("" if unnamed).
func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	switch t := t.(type) {
	case *types.Named:
		return t.Obj().Name()
	case *types.Alias:
		return recvTypeName(types.Unalias(t))
	}
	return ""
}

// pathQualifier prints named types with their full package path, so
// signatures computed from source-checked packages and from export data
// render identically.
func pathQualifier(p *types.Package) string { return p.Path() }

// sigString renders a function signature's external shape —
// "(params)(results)", receiver excluded — the form interface-call CHA and
// dynamic-call matching compare.
func sigString(sig *types.Signature) string {
	var b strings.Builder
	b.WriteByte('(')
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		t := params.At(i).Type()
		if sig.Variadic() && i == params.Len()-1 {
			b.WriteString("...")
			if s, ok := t.(*types.Slice); ok {
				t = s.Elem()
			}
		}
		b.WriteString(types.TypeString(t, pathQualifier))
	}
	b.WriteString(")(")
	results := sig.Results()
	for i := 0; i < results.Len(); i++ {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(types.TypeString(results.At(i).Type(), pathQualifier))
	}
	b.WriteByte(')')
	return b.String()
}

// methodSigOf builds the CHA index entry for a method object.
func methodSigOf(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	return fn.Name() + "\x00" + sigString(sig)
}

// buildGraphFuncs walks one package and returns its call-graph summary plus
// directive-hygiene diagnostics (misplaced or malformed hotroot/cold
// directives), reported under the "allow" pseudo-analyzer alongside the
// suppression engine's own hygiene findings.
func buildGraphFuncs(pkg *Package) ([]*GraphFunc, []Finding) {
	var funcs []*GraphFunc
	var findings []Finding
	consumed := make(map[*ast.Comment]bool)

	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			gf := &GraphFunc{
				Key:     funcKeyOf(obj),
				PkgPath: pkg.PkgPath,
				Display: displayNameOf(obj),
				Pos:     pkg.Fset.Position(fd.Pos()),
			}
			if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
				gf.MethodSig = methodSigOf(obj)
			}
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					switch text, kind := directiveText(c); kind {
					case HotrootPrefix:
						consumed[c] = true
						gf.Hotroot = true
					case ColdPrefix:
						consumed[c] = true
						if strings.TrimSpace(text) == "" {
							findings = append(findings, Finding{
								Analyzer: "allow",
								Pos:      pkg.Fset.Position(c.Pos()),
								Message:  "malformed directive: missing reason: write //lint:cold <why this function is off the hot path>",
							})
							continue
						}
						gf.Cold = true
					}
				}
			}
			if fd.Body != nil {
				collectCalls(pkg, fd.Body, gf)
			}
			funcs = append(funcs, gf)
		}
	}

	// Directive hygiene: hotroot/cold comments anywhere other than a
	// function declaration's doc comment mark nothing and rot silently —
	// report them like the suppression engine reports malformed allows.
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				if consumed[c] {
					continue
				}
				if _, kind := directiveText(c); kind != "" {
					findings = append(findings, Finding{
						Analyzer: "allow",
						Pos:      pkg.Fset.Position(c.Pos()),
						Message: "misplaced //" + kind + " directive: it must appear in a " +
							"function declaration's doc comment to mark that function",
					})
				}
			}
		}
	}
	return funcs, findings
}

// directiveText extracts the payload of a hotroot/cold directive comment,
// returning the directive kind ("" when c is not one).
func directiveText(c *ast.Comment) (text, kind string) {
	body, ok := commentDirectiveBody(c)
	if !ok {
		return "", ""
	}
	if rest, ok := cutDirective(body, HotrootPrefix); ok {
		return rest, HotrootPrefix
	}
	if rest, ok := cutDirective(body, ColdPrefix); ok {
		return rest, ColdPrefix
	}
	return "", ""
}

// collectCalls records the call edges and address-taken function values in
// one function body (nested function literals included — their calls belong
// to the enclosing declaration). The walk is pre-order, so a CallExpr is
// classified before its Fun expression is visited; the later visit of the
// same node then knows the reference was a call, not a value use.
//
// Function literals are deliberately NOT modeled as dynamic-call targets:
// treating "some func() value is invoked" as reaching every closure in the
// program (keyed by its encloser) collapses the graph — main and every
// other closure-holding function becomes reachable from any hot deferred
// call. Instead a literal's statements are attributed to its encloser at
// the creation site, and dynamic func-value calls resolve only to named
// address-taken functions.
func collectCalls(pkg *Package, body *ast.BlockStmt, gf *GraphFunc) {
	info := pkg.Info
	inCall := make(map[ast.Expr]bool)
	selSel := make(map[*ast.Ident]bool)

	addDyn := func(t types.Type) {
		if t == nil {
			return
		}
		if sig, ok := t.Underlying().(*types.Signature); ok {
			gf.DynCalls = append(gf.DynCalls, sigString(sig))
		}
	}
	takeAddr := func(fn *types.Func, valueType types.Type) {
		if sig, ok := valueType.Underlying().(*types.Signature); ok {
			gf.TakesAddr = append(gf.TakesAddr, AddrRef{Key: funcKeyOf(fn), Sig: sigString(sig)})
		}
	}

	classifyCall := func(call *ast.CallExpr) {
		if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
			return // conversion, not a call
		}
		fun := ast.Unparen(call.Fun)
		switch e := fun.(type) {
		case *ast.IndexExpr: // generic instantiation f[T](...)
			fun = ast.Unparen(e.X)
		case *ast.IndexListExpr:
			fun = ast.Unparen(e.X)
		}
		switch fun := fun.(type) {
		case *ast.Ident:
			switch obj := info.Uses[fun].(type) {
			case *types.Func:
				inCall[fun] = true
				gf.Calls = append(gf.Calls, funcKeyOf(obj))
			case *types.Builtin, *types.TypeName, nil:
				// builtins and conversions contribute no edges
			default:
				// call through a variable of function type
				addDyn(obj.Type())
			}
		case *ast.SelectorExpr:
			inCall[fun] = true
			if sel, ok := info.Selections[fun]; ok {
				switch sel.Kind() {
				case types.MethodVal:
					callee, _ := sel.Obj().(*types.Func)
					switch {
					case callee == nil:
					case isAbstract(sel.Recv()):
						gf.IfaceCalls = append(gf.IfaceCalls, methodSigOf(callee))
					default:
						gf.Calls = append(gf.Calls, funcKeyOf(callee))
					}
				case types.MethodExpr:
					if callee, ok := sel.Obj().(*types.Func); ok {
						gf.Calls = append(gf.Calls, funcKeyOf(callee))
					}
				case types.FieldVal:
					addDyn(sel.Type())
				}
			} else if obj, ok := info.Uses[fun.Sel].(*types.Func); ok {
				gf.Calls = append(gf.Calls, funcKeyOf(obj)) // pkg.F(...)
			} else {
				addDyn(info.TypeOf(fun)) // package-qualified var of func type
			}
		case *ast.FuncLit:
			// immediately invoked; its body is walked as part of this
			// declaration, so the edge is implicit
		default:
			// f()(), m[k](), and friends: a dynamic call through whatever
			// function value the expression produces.
			addDyn(info.TypeOf(call.Fun))
		}
	}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			classifyCall(n)
		case *ast.SelectorExpr:
			selSel[n.Sel] = true
			if inCall[n] {
				break
			}
			if sel, ok := info.Selections[n]; ok {
				if sel.Kind() == types.MethodVal || sel.Kind() == types.MethodExpr {
					if fn, ok := sel.Obj().(*types.Func); ok && !isAbstract(sel.Recv()) {
						takeAddr(fn, sel.Type())
					}
				}
			} else if fn, ok := info.Uses[n.Sel].(*types.Func); ok {
				takeAddr(fn, fn.Type())
			}
		case *ast.Ident:
			if inCall[n] || selSel[n] {
				break
			}
			if fn, ok := info.Uses[n].(*types.Func); ok {
				takeAddr(fn, fn.Type())
			}
		}
		return true
	})
}

// isAbstract reports whether a method receiver type is an interface or a
// type parameter — i.e. the call dispatches dynamically and must be
// resolved by name+signature against every analyzed method.
func isAbstract(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if _, ok := t.(*types.TypeParam); ok {
		return true
	}
	return types.IsInterface(t)
}

// FuncKeyOf returns the canonical call-graph key for fn ("pkg.Name" or
// "pkg.Recv.Name") — the value a global analyzer stores in
// Diagnostic.FuncKey so merge-time Select can place the diagnostic in the
// program call graph.
func FuncKeyOf(fn *types.Func) string { return funcKeyOf(fn) }
