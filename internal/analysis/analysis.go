// Package analysis is carbonlint's analyzer framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// API surface that the repository's custom analyzers need. The module has a
// zero-dependency policy (see DESIGN.md), so instead of importing x/tools
// we mirror the Analyzer/Pass/Diagnostic shape exactly; every analyzer under
// internal/analysis/... could be ported to the upstream multichecker by
// swapping this import and deleting nothing else.
//
// The framework differs from upstream in two deliberate ways:
//
//   - Packages are loaded whole (syntax + full type information) via
//     `go list -export`-provided export data, the same mechanism `go vet`
//     uses, rather than through a driver protocol. See Load in load.go.
//   - Suppression is first-class: a `//lint:allow <analyzer> <reason>`
//     comment on the flagged line (or the line above it) silences one
//     analyzer at that site. The reason is mandatory, and directives that
//     suppress nothing are themselves reported, so stale annotations rot
//     loudly. See run.go.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// An Analyzer describes one invariant check. It mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// `//lint:allow <name> <reason>` directives. Lower-case, no spaces.
	Name string
	// Doc is the analyzer's documentation: first line is a one-sentence
	// summary of the invariant it encodes.
	Doc string
	// Run applies the analyzer to one package. Findings are delivered via
	// pass.Report/Reportf, not the return value; the returned value exists
	// only for API compatibility with x/tools and is ignored.
	Run func(*Pass) (any, error)

	// Global marks a program-scoped analyzer. Run still executes once per
	// package, but its diagnostics become pending Candidates: after every
	// package's call-graph contribution is merged, Select decides which
	// candidates turn into findings. Global diagnostics must set FuncKey
	// (via FuncKeyOf) so Select can place them in the graph.
	Global bool
	// Select is consulted once per run, on the merged program call graph.
	// It returns a predicate deciding, for each candidate's FuncKey,
	// whether the diagnostic applies; the returned note (e.g. a hot call
	// path) is appended to the diagnostic message. A nil Select keeps
	// every candidate.
	Select func(g *Graph) func(funcKey string) (note string, keep bool)
}

func (a *Analyzer) String() string { return a.Name }

// A Pass provides one analyzer with the syntax trees and type information
// of a single package, plus the Report sink for diagnostics.
type Pass struct {
	Analyzer *Analyzer
	// Fset positions every token in Files.
	Fset *token.FileSet
	// Files holds the package's parsed non-test source files.
	Files []*ast.File
	// Pkg is the type-checked package; PkgPath is the import path the
	// package was loaded under (for testdata packages this is the
	// path relative to the testdata src root, not a real module path).
	Pkg     *types.Package
	PkgPath string
	// TypesInfo has Types, Defs, Uses, Selections, Implicits and Scopes
	// fully populated.
	TypesInfo *types.Info

	diagnostics []Diagnostic
}

// A Diagnostic is one finding, positioned at Pos. Diagnostics from Global
// analyzers additionally carry the enclosing function's call-graph key in
// FuncKey; local analyzers leave it empty.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	FuncKey string
}

// Report records a diagnostic.
func (p *Pass) Report(d Diagnostic) {
	p.diagnostics = append(p.diagnostics, d)
}

// Reportf records a diagnostic at pos with a Sprintf-formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.TypesInfo.TypeOf(e)
}
