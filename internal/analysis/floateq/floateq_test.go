package floateq_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/floateq"
)

func TestFloateq(t *testing.T) {
	analyzertest.Run(t, floateq.Analyzer, "a", "internal/numeric")
}
