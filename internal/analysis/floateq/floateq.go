// Package floateq flags == and != between floating-point operands.
//
// The reproduction's headline numbers (regret curves, the trader's fit
// bound) are float accumulations; exact equality on such values silently
// encodes an assumption about rounding that a refactor — or a different
// worker count, if an invariant elsewhere slips — will violate. Comparisons
// must go through internal/numeric's approved helpers (ApproxEqual) or an
// explicit tolerance.
//
// Two idioms stay legal because they are exact by IEEE-754 semantics:
// comparison against a constant zero (the ubiquitous "unset/degenerate"
// sentinel — 0 is exactly representable and arithmetic never produces a
// false zero match) and the self-comparison NaN test (x != x).
// internal/numeric itself is exempt: it implements the helpers.
package floateq

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "floateq",
	Doc: "flags ==/!= between floating-point operands outside internal/numeric; " +
		"use numeric.ApproxEqual or an explicit tolerance (comparisons against " +
		"constant 0 and the x != x NaN idiom are allowed)",
	Run: run,
}

func exempt(pkgPath string) bool {
	return pkgPath == "internal/numeric" || strings.HasSuffix(pkgPath, "/internal/numeric")
}

func isFloat(t types.Type) bool {
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// constZero reports whether e is a compile-time constant equal to zero.
func constZero(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
}

func isConst(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

func run(pass *analysis.Pass) (any, error) {
	if exempt(pass.PkgPath) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			tx, ty := pass.TypeOf(be.X), pass.TypeOf(be.Y)
			if tx == nil || ty == nil || !isFloat(tx) || !isFloat(ty) {
				return true
			}
			// Both sides constant: the comparison is decided at compile time.
			if isConst(pass, be.X) && isConst(pass, be.Y) {
				return true
			}
			// Exact-zero sentinel checks are well-defined.
			if constZero(pass, be.X) || constZero(pass, be.Y) {
				return true
			}
			// x != x is the NaN test; x == x its negation.
			if types.ExprString(be.X) == types.ExprString(be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use numeric.ApproxEqual or an explicit tolerance", be.Op)
			return true
		})
	}
	return nil, nil
}
