// Package a exercises floateq: exact float comparisons are flagged, the
// zero-sentinel and NaN idioms are not.
package a

func flagged(x, y float64, f32 float32) bool {
	if x == y { // want `floating-point == comparison`
		return true
	}
	if x != y+1 { // want `floating-point != comparison`
		return true
	}
	if x == 1.5 { // want `floating-point == comparison`
		return true
	}
	return float32(x) != f32 // want `floating-point != comparison`
}

func allowed(x, y float64, n, m int) bool {
	if x == 0 { // exact-zero sentinel
		return true
	}
	if 0.0 != y { // either side
		return true
	}
	if x != x { // NaN idiom
		return true
	}
	if n == m { // ints compare exactly
		return true
	}
	const a, b = 1.5, 2.5
	return a == b // compile-time constant comparison
}

func annotated(x, y float64) bool {
	//lint:allow floateq testdata: bit-exact golden comparison
	return x == y
}
