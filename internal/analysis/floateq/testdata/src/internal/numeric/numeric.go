// Package numeric stands in for the real internal/numeric, which implements
// the approved comparison helpers and is exempt from floateq.
package numeric

func ApproxEqual(a, b, tol float64) bool {
	if a == b { // exact fast path: legal here, flagged anywhere else
		return true
	}
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
