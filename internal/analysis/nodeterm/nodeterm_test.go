package nodeterm_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/nodeterm"
)

func TestNodeterm(t *testing.T) {
	analyzertest.Run(t, nodeterm.Analyzer, "a", "internal/numeric", "allowdir")
}
