// Package numeric stands in for the real internal/numeric: the one package
// allowed to construct RNGs. Wall-clock reads stay illegal even here.
package numeric

import (
	"math/rand"
	"time"
)

func SplitRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // constructing RNGs is numeric's job
}

func stillNoClock() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}
