// Package allowdir exercises the //lint:allow directive hygiene rules the
// runner enforces for every analyzer: reasons are mandatory and directives
// must suppress something.
package allowdir

import "time"

func missingReason() time.Time {
	//lint:allow nodeterm // want `malformed directive: missing reason`
	return time.Now() // want `time\.Now reads the wall clock`
}

func missingEverything() {
	//lint:allow // want `malformed directive: missing analyzer name and reason`
}

func unused() int {
	//lint:allow nodeterm nothing here trips it // want `unused directive: nothing here trips "nodeterm"`
	return 1
}

func used() time.Time {
	//lint:allow nodeterm testdata: properly annotated, suppresses and is used
	return time.Now()
}
