// Package a exercises every nodeterm rule: wall-clock reads, global
// math/rand functions, and ad-hoc RNG construction.
package a

import (
	"math/rand"
	"time"
)

func wallClock() float64 {
	start := time.Now() // want `time\.Now reads the wall clock`
	_ = time.Until(start)       // want `time\.Until reads the wall clock`
	return time.Since(start).Seconds() // want `time\.Since reads the wall clock`
}

func globalRand() {
	_ = rand.Intn(10)   // want `global math/rand\.Intn draws from process-wide state`
	_ = rand.Float64()  // want `global math/rand\.Float64 draws from process-wide state`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle draws from process-wide state`
}

func sleeper() {
	time.Sleep(time.Second) // want `time\.Sleep waits on the wall clock`
}

// referencing the function (not calling it) is just as wall-clock-bound.
func sleepRef() func(time.Duration) {
	return time.Sleep // want `time\.Sleep waits on the wall clock`
}

func annotatedSleep() {
	//lint:allow nodeterm testdata: real backoff; tests inject a zero-time sleep
	time.Sleep(time.Millisecond)
}

func adHocRNG() *rand.Rand {
	src := rand.NewSource(42) // want `ad-hoc RNG construction \(rand\.NewSource\)`
	return rand.New(src)      // want `ad-hoc RNG construction \(rand\.New\)`
}

// injected randomness and non-function references are fine.
func ok(rng *rand.Rand, d time.Duration) float64 {
	var zero time.Time
	_ = zero
	_ = d
	return rng.Float64()
}

func annotated() time.Time {
	//lint:allow nodeterm testdata: wall-clock site annotated with a reason
	return time.Now()
}

func annotatedTrailing() time.Time {
	return time.Now() //lint:allow nodeterm testdata: trailing annotation form
}
