// Package nodeterm forbids the nondeterminism primitives that would break
// the engine's bit-for-bit reproducibility guarantee: wall-clock reads,
// wall-clock waiting, and ad-hoc randomness.
//
// The shared engine (internal/engine) promises identical results for any
// worker count. That holds only while every package in the slot-stepping
// call graph — engine, sim, core, bandit, trading, market, workload — draws
// randomness exclusively from RNG streams derived through
// internal/numeric.SplitRNG and never consults the wall clock. Rather than
// enumerate the critical packages (and silently miss the next one), the
// analyzer applies repo-wide to non-test code; the handful of legitimate
// wall-clock sites (a TCP deadline, the Fig. 14 runtime measurement) carry
// //lint:allow annotations explaining themselves.
package nodeterm

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "nodeterm",
	Doc: "forbids wall-clock reads (time.Now/Since/Until), wall-clock waiting " +
		"(time.Sleep), and ad-hoc randomness (global math/rand functions, " +
		"rand.New/NewSource outside internal/numeric); derive RNGs via " +
		"numeric.SplitRNG so runs replay bit-for-bit",
	Run: run,
}

// wallClock are the time package functions that read the wall clock.
var wallClock = map[string]bool{"Now": true, "Since": true, "Until": true}

// rngBlessed reports whether pkgPath is internal/numeric, the one package
// allowed to construct *rand.Rand values (via SplitRNG).
func rngBlessed(pkgPath string) bool {
	return pkgPath == "internal/numeric" || strings.HasSuffix(pkgPath, "/internal/numeric")
}

func run(pass *analysis.Pass) (any, error) {
	blessed := rngBlessed(pass.PkgPath)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			// Only function references matter: *rand.Rand in a signature or
			// time.Duration in a struct field are fine.
			if _, isFunc := pass.TypesInfo.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "time":
				if wallClock[name] {
					pass.Reportf(sel.Pos(),
						"time.%s reads the wall clock; inject a clock or keep timing out of deterministic code", name)
				}
				if name == "Sleep" {
					pass.Reportf(sel.Pos(),
						"time.Sleep waits on the wall clock; inject a sleep function so tests and replays control time")
				}
			case "math/rand", "math/rand/v2":
				switch {
				case name == "New" || name == "NewSource" || name == "NewPCG" || name == "NewChaCha8":
					if !blessed {
						pass.Reportf(sel.Pos(),
							"ad-hoc RNG construction (rand.%s); derive seeded streams via numeric.SplitRNG", name)
					}
				default:
					pass.Reportf(sel.Pos(),
						"global math/rand.%s draws from process-wide state; use an injected *rand.Rand from numeric.SplitRNG", name)
				}
			}
			return true
		})
	}
	return nil, nil
}
