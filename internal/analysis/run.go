package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// AllowPrefix introduces a suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory — an annotation that cannot say why it exists should not
// exist — and a directive that suppresses nothing is itself reported, so
// stale annotations surface the next time carbonlint runs.
const AllowPrefix = "lint:allow"

// A Finding is one positioned diagnostic, attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// commentDirectiveBody extracts the "lint:..." payload of a directive
// comment. Line directives start exactly "//lint:"; block directives start
// exactly "/*lint:" and read to the end of their first line, so a directive
// can sit mid-code as /*lint:allow name reason*/. In both forms a nested
// "//" ends the payload, so analyzertest want expectations can share the
// comment; reasons therefore cannot contain "//".
func commentDirectiveBody(c *ast.Comment) (string, bool) {
	if rest, ok := strings.CutPrefix(c.Text, "//"); ok {
		if !strings.HasPrefix(rest, "lint:") {
			return "", false
		}
		rest, _, _ = strings.Cut(rest, "//")
		return rest, true
	}
	rest, ok := strings.CutPrefix(c.Text, "/*")
	if !ok || !strings.HasPrefix(rest, "lint:") {
		return "", false
	}
	rest, _, _ = strings.Cut(rest, "\n")
	rest = strings.TrimSuffix(strings.TrimSpace(rest), "*/")
	rest, _, _ = strings.Cut(rest, "//")
	return rest, true
}

// cutDirective strips a directive keyword from a payload, requiring a word
// boundary so a hypothetical lint:allowx never parses as lint:allow.
func cutDirective(body, keyword string) (string, bool) {
	rest, ok := strings.CutPrefix(body, keyword)
	if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
		return "", false
	}
	return rest, true
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
	// malformed holds the complaint when the directive failed to parse;
	// malformed directives never suppress anything.
	malformed string
}

// parseAllowDirectives walks every comment in the package and extracts
// //lint:allow directives (line or block form), keyed by (filename, line)
// of the comment.
func parseAllowDirectives(pkg *Package) map[string]map[int]*allowDirective {
	byFile := make(map[string]map[int]*allowDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body, ok := commentDirectiveBody(c)
				if !ok {
					continue
				}
				text, ok := cutDirective(body, AllowPrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{pos: pos}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.malformed = "missing reason: write //lint:allow " + fields[0] + " <why this site is exempt>"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]*allowDirective)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = d
			}
		}
	}
	return byFile
}

// suppressedBy returns the directive covering a diagnostic from analyzer at
// pos, or nil. A directive covers its own line and the line below it.
func suppressedBy(dirs map[string]map[int]*allowDirective, analyzer string, pos token.Position) *allowDirective {
	lines := dirs[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d := lines[line]; d != nil && d.malformed == "" && d.analyzer == analyzer {
			return d
		}
	}
	return nil
}

// A Candidate is one diagnostic from a Global analyzer, pending the
// program-wide Select decision that MergeSummaries makes once every
// package's call-graph contribution has been stitched together.
type Candidate struct {
	Analyzer string
	Pos      token.Position
	Message  string
	// FuncKey names the enclosing function in the program call graph.
	FuncKey string
	// Allow indexes the summary's AllowDirs entry covering this site, or -1.
	// Whether the directive counts as used is only known after Select runs.
	Allow int
}

// An AllowDir is an //lint:allow directive naming a Global analyzer; its
// used/unused resolution is deferred to MergeSummaries.
type AllowDir struct {
	Analyzer string
	Pos      token.Position
}

// A PkgSummary is the complete result of analyzing one package in
// isolation: resolved local findings, the package's call-graph
// contribution, and the global analyzers' pending candidates. It is plain
// data — exactly what the lint cache serializes (see cache.go) — so merging
// cached and freshly-computed summaries is indistinguishable.
type PkgSummary struct {
	PkgPath    string
	Findings   []Finding
	Funcs      []*GraphFunc
	Candidates []Candidate
	AllowDirs  []AllowDir
}

// Summarize runs every analyzer on one loaded package. Local analyzers'
// diagnostics are suppression-resolved immediately; Global analyzers'
// diagnostics become Candidates (with their covering allow directives
// recorded but unresolved), because whether they fire at all depends on the
// whole-program call graph no single package can see.
func Summarize(pkg *Package, analyzers []*Analyzer) (*PkgSummary, error) {
	s := &PkgSummary{PkgPath: pkg.PkgPath}
	globalNames := make(map[string]bool)
	for _, a := range analyzers {
		if a.Global {
			globalNames[a.Name] = true
		}
	}

	funcs, graphFindings := buildGraphFuncs(pkg)
	s.Funcs = funcs
	s.Findings = append(s.Findings, graphFindings...)

	dirs := parseAllowDirectives(pkg)
	pendingIdx := make(map[*allowDirective]int)
	pending := func(d *allowDirective) int {
		idx, ok := pendingIdx[d]
		if !ok {
			idx = len(s.AllowDirs)
			pendingIdx[d] = idx
			s.AllowDirs = append(s.AllowDirs, AllowDir{Analyzer: d.analyzer, Pos: d.pos})
		}
		return idx
	}

	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			PkgPath:   pkg.PkgPath,
			TypesInfo: pkg.Info,
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
		}
		for _, diag := range pass.diagnostics {
			pos := pkg.Fset.Position(diag.Pos)
			d := suppressedBy(dirs, a.Name, pos)
			if a.Global {
				c := Candidate{Analyzer: a.Name, Pos: pos, Message: diag.Message, FuncKey: diag.FuncKey, Allow: -1}
				if d != nil {
					c.Allow = pending(d)
				}
				s.Candidates = append(s.Candidates, c)
				continue
			}
			if d != nil {
				d.used = true
				continue
			}
			s.Findings = append(s.Findings, Finding{Analyzer: a.Name, Pos: pos, Message: diag.Message})
		}
	}

	// Deterministic directive order: the summary round-trips through the
	// lint cache, so its bytes must not depend on map iteration.
	var ordered []*allowDirective
	for _, lines := range dirs {
		for _, d := range lines {
			ordered = append(ordered, d)
		}
	}
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.pos.Filename != b.pos.Filename {
			return a.pos.Filename < b.pos.Filename
		}
		return a.pos.Line < b.pos.Line
	})
	for _, d := range ordered {
		switch {
		case d.malformed != "":
			s.Findings = append(s.Findings, Finding{
				Analyzer: "allow",
				Pos:      d.pos,
				Message:  "malformed directive: " + d.malformed,
			})
		case d.used:
		case globalNames[d.analyzer]:
			pending(d) // used/unused is decided at merge time
		default:
			s.Findings = append(s.Findings, Finding{
				Analyzer: "allow",
				Pos:      d.pos,
				Message:  fmt.Sprintf("unused directive: nothing here trips %q; delete the annotation", d.analyzer),
			})
		}
	}
	return s, nil
}

// MergeSummaries stitches package summaries into the program call graph,
// resolves every Global analyzer's candidates and pending allow directives
// against it, and returns all findings sorted by position.
func MergeSummaries(sums []*PkgSummary, analyzers []*Analyzer) []Finding {
	lists := make([][]*GraphFunc, 0, len(sums))
	for _, s := range sums {
		lists = append(lists, s.Funcs)
	}
	graph := MergeGraph(lists...)

	keeps := make(map[string]func(string) (string, bool))
	for _, a := range analyzers {
		if a.Global && a.Select != nil {
			keeps[a.Name] = a.Select(graph)
		}
	}

	var findings []Finding
	for _, s := range sums {
		used := make([]bool, len(s.AllowDirs))
		for _, c := range s.Candidates {
			note := ""
			if keep := keeps[c.Analyzer]; keep != nil {
				n, ok := keep(c.FuncKey)
				if !ok {
					continue
				}
				note = n
			}
			if c.Allow >= 0 {
				used[c.Allow] = true
				continue
			}
			findings = append(findings, Finding{Analyzer: c.Analyzer, Pos: c.Pos, Message: c.Message + note})
		}
		for i, d := range s.AllowDirs {
			if !used[i] {
				findings = append(findings, Finding{
					Analyzer: "allow",
					Pos:      d.Pos,
					Message:  fmt.Sprintf("unused directive: nothing here trips %q; delete the annotation", d.Analyzer),
				})
			}
		}
		findings = append(findings, s.Findings...)
	}
	sortFindings(findings)
	return findings
}

func sortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzers applies every analyzer to every package, resolves
// //lint:allow suppressions and program-wide Select decisions, and returns
// the surviving findings sorted by position. Malformed and unused
// directives are reported as findings of the pseudo-analyzer "allow".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	sums := make([]*PkgSummary, 0, len(pkgs))
	for _, pkg := range pkgs {
		s, err := Summarize(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		sums = append(sums, s)
	}
	return MergeSummaries(sums, analyzers), nil
}
