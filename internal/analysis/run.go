package analysis

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// AllowPrefix introduces a suppression directive:
//
//	//lint:allow <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it. The reason
// is mandatory — an annotation that cannot say why it exists should not
// exist — and a directive that suppresses nothing is itself reported, so
// stale annotations surface the next time carbonlint runs.
const AllowPrefix = "lint:allow"

// A Finding is one positioned diagnostic, attributed to its analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// allowDirective is one parsed //lint:allow comment.
type allowDirective struct {
	pos      token.Position
	analyzer string
	reason   string
	used     bool
	// malformed holds the complaint when the directive failed to parse;
	// malformed directives never suppress anything.
	malformed string
}

// parseAllowDirectives walks every comment in the package and extracts
// //lint:allow directives, keyed by (filename, line) of the comment.
func parseAllowDirectives(pkg *Package) map[string]map[int]*allowDirective {
	byFile := make(map[string]map[int]*allowDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+AllowPrefix)
				if !ok {
					continue
				}
				// A nested "//" ends the directive, so analyzertest want
				// expectations can share the comment; reasons therefore
				// cannot contain "//".
				text, _, _ = strings.Cut(text, "//")
				pos := pkg.Fset.Position(c.Pos())
				d := &allowDirective{pos: pos}
				fields := strings.Fields(text)
				switch {
				case len(fields) == 0:
					d.malformed = "missing analyzer name and reason"
				case len(fields) == 1:
					d.analyzer = fields[0]
					d.malformed = "missing reason: write //lint:allow " + fields[0] + " <why this site is exempt>"
				default:
					d.analyzer = fields[0]
					d.reason = strings.Join(fields[1:], " ")
				}
				lines := byFile[pos.Filename]
				if lines == nil {
					lines = make(map[int]*allowDirective)
					byFile[pos.Filename] = lines
				}
				lines[pos.Line] = d
			}
		}
	}
	return byFile
}

// suppressedBy returns the directive covering a diagnostic from analyzer at
// pos, or nil. A directive covers its own line and the line below it.
func suppressedBy(dirs map[string]map[int]*allowDirective, analyzer string, pos token.Position) *allowDirective {
	lines := dirs[pos.Filename]
	if lines == nil {
		return nil
	}
	for _, line := range [2]int{pos.Line, pos.Line - 1} {
		if d := lines[line]; d != nil && d.malformed == "" && d.analyzer == analyzer {
			return d
		}
	}
	return nil
}

// RunAnalyzers applies every analyzer to every package, resolves
// //lint:allow suppressions, and returns the surviving findings sorted by
// position. Malformed and unused directives are reported as findings of the
// pseudo-analyzer "allow".
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	var findings []Finding
	for _, pkg := range pkgs {
		dirs := parseAllowDirectives(pkg)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				PkgPath:   pkg.PkgPath,
				TypesInfo: pkg.Info,
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.PkgPath, err)
			}
			for _, diag := range pass.diagnostics {
				pos := pkg.Fset.Position(diag.Pos)
				if d := suppressedBy(dirs, a.Name, pos); d != nil {
					d.used = true
					continue
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: diag.Message})
			}
		}
		for _, lines := range dirs {
			for _, d := range lines {
				switch {
				case d.malformed != "":
					findings = append(findings, Finding{
						Analyzer: "allow",
						Pos:      d.pos,
						Message:  "malformed directive: " + d.malformed,
					})
				case !d.used:
					findings = append(findings, Finding{
						Analyzer: "allow",
						Pos:      d.pos,
						Message:  fmt.Sprintf("unused directive: nothing here trips %q; delete the annotation", d.analyzer),
					})
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
