package deltapure_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/deltapure"
)

func TestDeltapure(t *testing.T) {
	analyzertest.Run(t, deltapure.Analyzer, "internal/engine", "b/internal/engine", "a")
}
