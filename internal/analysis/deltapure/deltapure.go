// Package deltapure enforces the sharded engine's mergeable-reduction
// contract on engine.SlotDelta/EdgeDelta: delta fields carry raw per-edge
// terms, never partial sums. Bit-identical Results for every shard × worker
// decomposition hold only because float accumulation happens exactly once,
// serially, in edge-index order — inside Fold. So outside Fold, float delta
// fields may not be accumulated, assigned computed float expressions, or
// used as float-arithmetic operands; and Merge must remain a pure ordered
// concatenation (PR 6's property tests sample this associativity invariant,
// deltapure enforces it exhaustively).
package deltapure

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "deltapure",
	Doc: "engine.SlotDelta/EdgeDelta fields must hold raw per-edge terms: no " +
		"float accumulation or arithmetic on delta fields outside SlotDelta.Fold, " +
		"and Merge must remain a pure ordered concatenation",
	Run: run,
}

// deltaNamed reports whether t (after pointer stripping) is one of the
// engine's delta types. Matching is by package path and name so the check
// follows the types across every importing package; a testdata package
// placed at src/internal/engine exercises the same path.
func deltaNamed(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	if name := obj.Name(); name != "SlotDelta" && name != "EdgeDelta" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "internal/engine" || strings.HasSuffix(path, "/internal/engine")
}

// deltaFloatField reports whether e selects a float-typed field of a delta
// value, returning the field name. Int fields (Samples, Retries) are exact
// and exempt; only float fields can smuggle order-dependent rounding.
func deltaFloatField(info *types.Info, e ast.Expr) (string, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal || !deltaNamed(s.Recv()) {
		return "", false
	}
	b, ok := s.Obj().Type().Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsFloat == 0 {
		return "", false
	}
	return s.Obj().Name(), true
}

// isFloatArith reports whether e is a float-typed arithmetic expression.
func isFloatArith(info *types.Info, e ast.Expr) bool {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch be.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	t := info.TypeOf(be)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isArithAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		return true
	}
	return false
}

// deltaMethod reports whether fd is a method with a delta-typed receiver
// named name.
func deltaMethod(info *types.Info, fd *ast.FuncDecl, name string) bool {
	if fd.Name.Name != name || fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	return deltaNamed(info.TypeOf(fd.Recv.List[0].Type))
}

func run(pass *analysis.Pass) (any, error) {
	info := pass.TypesInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			switch {
			case deltaMethod(info, fd, "Fold"):
				// Fold is the one blessed accumulation site.
			case deltaMethod(info, fd, "Merge"):
				checkMerge(pass, fd)
			default:
				checkRawTerms(pass, fd)
			}
		}
	}
	return nil, nil
}

// checkMerge keeps Merge a pure ordered concatenation: no float arithmetic
// of any kind, and no rewriting of per-edge elements.
func checkMerge(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BinaryExpr:
			if isFloatArith(info, n) {
				pass.Reportf(n.Pos(),
					"float arithmetic in Merge; Merge must remain a pure ordered concatenation of raw per-edge terms")
			}
		case *ast.AssignStmt:
			if isArithAssign(n.Tok) {
				if t := info.TypeOf(n.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
						pass.Reportf(n.Pos(),
							"float accumulation in Merge; Merge must remain a pure ordered concatenation of raw per-edge terms")
					}
				}
			}
			for _, lhs := range n.Lhs {
				l := ast.Unparen(lhs)
				if ie, ok := l.(*ast.IndexExpr); ok && deltaNamed(info.TypeOf(ie)) {
					pass.Reportf(lhs.Pos(),
						"Merge rewrites a per-edge element; Merge must only concatenate, never edit deltas")
					continue
				}
				if name, ok := deltaFloatField(info, l); ok {
					pass.Reportf(lhs.Pos(),
						"Merge writes delta field %s; Merge must only concatenate, never edit per-edge terms", name)
				}
			}
		}
		return true
	})
}

// checkRawTerms enforces the raw-term discipline everywhere outside
// Fold/Merge.
func checkRawTerms(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if isArithAssign(n.Tok) && len(n.Lhs) == 1 {
				if name, ok := deltaFloatField(info, n.Lhs[0]); ok {
					pass.Reportf(n.Pos(),
						"delta field %s accumulated outside Fold; deltas carry raw per-edge terms, folded once in edge-index order", name)
					return true
				}
			}
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				for i, lhs := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if name, ok := deltaFloatField(info, lhs); ok && isFloatArith(info, n.Rhs[i]) {
						pass.Reportf(n.Rhs[i].Pos(),
							"delta field %s assigned a computed float expression; assign the raw per-edge term and let Fold accumulate", name)
					}
				}
			}
		case *ast.IncDecStmt:
			if name, ok := deltaFloatField(info, n.X); ok {
				pass.Reportf(n.Pos(),
					"delta field %s accumulated outside Fold; deltas carry raw per-edge terms, folded once in edge-index order", name)
			}
		case *ast.BinaryExpr:
			switch n.Op {
			case token.ADD, token.SUB, token.MUL, token.QUO:
			default:
				return true
			}
			if !isFloatArith(info, n) {
				return true
			}
			for _, op := range [2]ast.Expr{n.X, n.Y} {
				if name, ok := deltaFloatField(info, op); ok {
					pass.Reportf(n.Pos(),
						"float arithmetic on delta field %s outside Fold; fold raw terms once, serially, in edge-index order", name)
				}
			}
		case *ast.CompositeLit:
			if !deltaNamed(info.TypeOf(n)) {
				return true
			}
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if isFloatArith(info, v) {
					pass.Reportf(v.Pos(),
						"delta literal field assigned a computed float expression; store the raw per-edge term and let Fold accumulate")
				}
			}
		}
		return true
	})
}
