// Package a proves the delta contract follows engine's real types across
// package boundaries.
package a

import "github.com/carbonedge/carbonedge/internal/engine"

func addLoss(d *engine.SlotDelta, v float64) {
	d.Edges[0].Loss += v // want `accumulated outside Fold`
}

func scale(ed *engine.EdgeDelta, f float64) float64 {
	return ed.InferKWh * f // want `float arithmetic on delta field InferKWh`
}

func raw(ed *engine.EdgeDelta, v float64) {
	ed.Loss = v // raw term: clean
}

func spare(v float64) float64 {
	return v + 1 //lint:allow deltapure stale excuse // want `unused directive`
}
