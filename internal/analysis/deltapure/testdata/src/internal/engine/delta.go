// Package engine is a testdata stand-in placed at the real path suffix so
// deltapure's path-based type matching applies to it.
package engine

type EdgeDelta struct {
	Loss     float64
	Compute  float64
	InferKWh float64
	Samples  int
}

type SlotDelta struct {
	Start int
	Edges []EdgeDelta
}

// Merge is a pure ordered concatenation: clean.
func (d *SlotDelta) Merge(o SlotDelta) {
	if o.Start != d.Start+len(d.Edges) {
		panic("engine: non-adjacent merge")
	}
	d.Edges = append(d.Edges, o.Edges...)
}

// Fold is the one blessed accumulation site: exempt.
func (d *SlotDelta) Fold() (loss, kwh float64) {
	for _, ed := range d.Edges {
		loss += ed.Loss
		kwh += ed.InferKWh * 0.5
	}
	return loss, kwh
}

func fill(d *SlotDelta, obs float64, n int) {
	ed := EdgeDelta{
		Loss:    obs,       // raw term: clean
		Compute: obs * 0.5, // want `computed float expression`
		Samples: n * 2,     // int arithmetic is exact: clean
	}
	ed.InferKWh = obs // raw term: clean
	d.Edges[0] = ed
}

func accumulate(d *SlotDelta, v float64) {
	d.Edges[0].Loss += v // want `accumulated outside Fold`
}

func compute(ed *EdgeDelta, a, b float64) {
	ed.Compute = a * b // want `assigned a computed float expression`
}

func readBack(ed *EdgeDelta, f float64) float64 {
	if ed.InferKWh > 1.0 { // comparison, not arithmetic: clean
		return 0
	}
	return ed.Loss * f // want `float arithmetic on delta field Loss`
}

func allowed(ed *EdgeDelta) {
	ed.Loss += 1 //lint:allow deltapure testdata demonstrates suppression
}
