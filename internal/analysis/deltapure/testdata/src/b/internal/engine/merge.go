// Package engine (under b/) exercises the Merge purity rules with a
// deliberately impure Merge.
package engine

type EdgeDelta struct {
	Loss float64
}

type SlotDelta struct {
	Start int
	Edges []EdgeDelta
}

func (d *SlotDelta) Merge(o SlotDelta) {
	d.Edges[0] = o.Edges[0]    // want `Merge rewrites a per-edge element`
	d.Edges[0].Loss = 1        // want `Merge writes delta field Loss`
	s := o.Edges[0].Loss + 1.0 // want `float arithmetic in Merge`
	_ = s
	d.Edges = append(d.Edges, o.Edges...)
}
