// Package a exercises panicpolicy: panic stays legal in constructors,
// Must wrappers, init, and validation guards; everywhere else it is
// flagged unless annotated as a documented API-contract guard.
package a

import "fmt"

type T struct{ n int }

func NewT(n int) *T {
	if n <= 0 {
		panic("constructor validation") // New* may panic
	}
	return &T{n: n}
}

func MustT(t *T, err error) *T {
	if err != nil {
		panic(err) // Must* may panic
	}
	return t
}

func init() {
	if false {
		panic("load-time validation") // init may panic
	}
}

func validateIndex(i, n int) {
	if i < 0 || i >= n {
		panic(fmt.Sprintf("index %d out of range", i)) // validate* may panic
	}
}

func checkShape(got, want int) {
	if got != want {
		panic("shape mismatch") // check* may panic
	}
}

func (t *T) Step() {
	if t.n == 0 {
		panic("bad state") // want `panic in Step is outside a constructor/validation path`
	}
}

func helper() {
	defer func() {
		panic("cleanup") // want `panic in helper is outside a constructor/validation path`
	}()
	f := func() {
		panic("closure") // want `panic in helper is outside a constructor/validation path`
	}
	f()
}

func (t *T) Update() {
	//lint:allow panicpolicy testdata: documented API-contract guard
	panic("contract violation")
}
