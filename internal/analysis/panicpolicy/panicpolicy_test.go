package panicpolicy_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/panicpolicy"
)

func TestPanicpolicy(t *testing.T) {
	analyzertest.Run(t, panicpolicy.Analyzer, "a")
}
