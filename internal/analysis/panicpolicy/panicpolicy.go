// Package panicpolicy restricts panic to constructors and validation paths.
//
// The engine recovers stepper panics into errors (internal/engine), but a
// panic is still a crash for every caller that isn't the worker pool, so the
// repository's policy is: panic only where the alternative is propagating a
// programmer error through APIs that cannot express it — constructors
// (New*), Must* wrappers, init, and validate*/check* guards. Everywhere else
// return an error. Deliberate API-contract guards (the bandit's
// SelectArm/Update alternation) carry //lint:allow annotations naming the
// contract they enforce.
package panicpolicy

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "panicpolicy",
	Doc: "restricts panic to constructors (New*/Must*), init, and validate*/check* " +
		"guards; everywhere else return an error, or annotate a documented API-contract " +
		"guard with //lint:allow panicpolicy <contract>",
	Run: run,
}

// allowedFunc reports whether the enclosing function's name marks a
// constructor or validation path.
func allowedFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, prefix := range []string{"new", "must", "init", "validate", "check"} {
		if strings.HasPrefix(lower, prefix) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				// Package-level initializer expressions run once at startup;
				// a panic there is load-time validation.
				continue
			}
			if allowedFunc(fn.Name.Name) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok {
					return true
				}
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "panic" {
					return true
				}
				pass.Reportf(call.Pos(),
					"panic in %s is outside a constructor/validation path; return an error instead", fn.Name.Name)
				return true
			})
		}
	}
	return nil, nil
}
