package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"sort"
)

// Package-level lint cache. A package's summary (local findings, call-graph
// contribution, global-analyzer candidates — see PkgSummary) depends only
// on the package's own sources and the export data of its dependencies, so
// it can be keyed on the export-data path `go list -export` reports: the
// path embeds the build action ID, a hash of the compile inputs (every
// source byte, comments included) and, transitively, of everything
// imported. Any edit anywhere below a package produces a new path and
// therefore a cache miss; nothing is ever invalidated by hand.
//
// Program-wide soundness is preserved because caching stops at the summary:
// MergeSummaries recomputes the whole-program call graph and every Global
// analyzer's reachability decision from scratch on each run, over cached
// and fresh summaries alike. A cached package whose function becomes
// hot-reachable through an edit in a *different* package still has its
// candidates re-selected correctly.

// CacheStats reports how a LintCached run split between cache hits and
// freshly analyzed packages.
type CacheStats struct {
	Hits, Misses int
}

// cacheFormat versions the serialized PkgSummary layout; bump it when the
// schema changes meaning.
const cacheFormat = "carbonlint-cache-v1"

// cacheMaxEntries bounds the cache directory; past it the cache is simply
// reset (entries are content-keyed, so a reset only costs one cold run).
const cacheMaxEntries = 1024

// toolSalt fingerprints the running linter binary. Summaries depend on
// analyzer code, not just analyzed sources, so every cache key folds in the
// executable's content hash; rebuilding carbonlint (including implicitly
// via `go run` after editing an analyzer) invalidates the cache wholesale.
func toolSalt() string {
	exe, err := os.Executable()
	if err != nil {
		return cacheFormat + "-noexe"
	}
	data, err := os.ReadFile(exe)
	if err != nil {
		return cacheFormat + "-noexe"
	}
	sum := sha256.Sum256(data)
	return cacheFormat + "-" + hex.EncodeToString(sum[:8])
}

func cacheKey(salt, pkgPath, exportFile string) string {
	h := sha256.New()
	for _, s := range []string{salt, pkgPath, exportFile} {
		h.Write([]byte(s))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func readCachedSummary(path string) *PkgSummary {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	s := new(PkgSummary)
	if json.Unmarshal(data, s) != nil {
		return nil
	}
	return s
}

// writeCachedSummary stores a summary atomically (temp file + rename) so
// concurrent lint runs never observe torn entries. Failures are ignored:
// the cache is an accelerator, never a correctness dependency.
func writeCachedSummary(path string, s *PkgSummary) {
	data, err := json.Marshal(s)
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return
	}
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
	}
}

// pruneCache resets the cache directory when it outgrows cacheMaxEntries.
func pruneCache(cacheDir string) {
	entries, err := os.ReadDir(cacheDir)
	if err != nil || len(entries) <= cacheMaxEntries {
		return
	}
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			os.Remove(filepath.Join(cacheDir, e.Name()))
		}
	}
}

// LintCached is the caching front door: it lists the packages matching
// patterns (relative to dir), replays cached summaries for packages whose
// export-data key is unchanged, parses/type-checks/summarizes only the
// rest, and merges everything exactly as RunAnalyzers would. The expensive
// per-package work — parsing and type-checking — is what a hit skips.
func LintCached(dir, cacheDir string, analyzers []*Analyzer, patterns ...string) ([]Finding, CacheStats, error) {
	var stats CacheStats
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, stats, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, lp := range listed {
		if lp.Error != nil {
			return nil, stats, errListed(lp)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly && !lp.Standard {
			targets = append(targets, lp)
		}
	}
	if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		return nil, stats, err
	}
	pruneCache(cacheDir)
	salt := toolSalt()

	fset := token.NewFileSet()
	imp := makeResolver(fset, exports)
	var sums []*PkgSummary
	for _, lp := range targets {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var path string
		if lp.Export != "" {
			path = filepath.Join(cacheDir, cacheKey(salt, lp.ImportPath, lp.Export)+".json")
			if s := readCachedSummary(path); s != nil && s.PkgPath == lp.ImportPath {
				stats.Hits++
				sums = append(sums, s)
				continue
			}
		}
		stats.Misses++
		pkg, err := typeCheck(fset, imp, lp.ImportPath, lp.Dir, lp.GoFiles)
		if err != nil {
			return nil, stats, err
		}
		pkg.ExportFile = lp.Export
		s, err := Summarize(pkg, analyzers)
		if err != nil {
			return nil, stats, err
		}
		if path != "" {
			writeCachedSummary(path, s)
		}
		sums = append(sums, s)
	}
	sort.Slice(sums, func(i, j int) bool { return sums[i].PkgPath < sums[j].PkgPath })
	return MergeSummaries(sums, analyzers), stats, nil
}
