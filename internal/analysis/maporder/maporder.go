// Package maporder flags range-over-map bodies whose effect depends on Go's
// randomized map iteration order.
//
// Floating-point addition is not associative, so accumulating floats while
// ranging a map yields run-to-run different sums — the classic silent
// nondeterminism hazard the engine's bit-for-bit guarantee cannot survive.
// The analyzer flags three body shapes:
//
//   - compound accumulation (+=, -=, *=, /=, or x = x + ...) into a
//     float-typed lvalue declared outside the loop,
//   - append of a float-carrying value — a plain float or a composite
//     (struct/array/slice, e.g. an engine.EdgeDelta) with float components
//     anywhere inside — other than the bare range key (key collection for
//     sorting is the approved fix and stays legal); a slice of such values
//     built in map order would fold to different bits run to run,
//   - fmt print calls (output lines in map order).
//
// The fix is always the same: collect the keys, sort them, iterate the
// sorted slice.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flags float accumulation, appends of float-carrying values, and printing " +
		"inside range-over-map bodies; iterate sorted keys instead so results " +
		"don't depend on map order",
	Run: run,
}

func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// carriesFloat reports whether t is a float or a composite with a float
// component anywhere inside — a struct field, array/slice element, or a
// nesting of those (e.g. engine.EdgeDelta, []engine.SlotDelta). Appending
// such a value in map order is as order-sensitive as appending the float
// itself. seen breaks cycles through self-referential named types.
func carriesFloat(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		return u.Info()&types.IsFloat != 0
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if carriesFloat(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return carriesFloat(u.Elem(), seen)
	case *types.Slice:
		return carriesFloat(u.Elem(), seen)
	case *types.Pointer:
		return carriesFloat(u.Elem(), seen)
	}
	return false
}

// rootIdent unwraps selectors/indexes to the base identifier: s.total -> s.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypeOf(rs.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkBody(pass, rs)
			return true
		})
	}
	return nil, nil
}

// declaredOutside reports whether the object behind e's root identifier was
// declared outside the loop body (an accumulator that survives iterations).
func declaredOutside(pass *analysis.Pass, body *ast.BlockStmt, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	if obj == nil {
		return false
	}
	return obj.Pos() < body.Pos() || obj.Pos() > body.End()
}

func checkBody(pass *analysis.Pass, rs *ast.RangeStmt) {
	body := rs.Body
	keyObj := func() types.Object {
		if id, ok := rs.Key.(*ast.Ident); ok && id.Name != "_" {
			return pass.TypesInfo.ObjectOf(id)
		}
		return nil
	}()

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			switch s.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				for _, lhs := range s.Lhs {
					if isFloat(pass.TypeOf(lhs)) && declaredOutside(pass, body, lhs) {
						pass.Reportf(s.TokPos,
							"float accumulation in map iteration order; iterate sorted keys instead")
					}
				}
			case token.ASSIGN:
				// x = x + y spelled out.
				if len(s.Lhs) != 1 || len(s.Rhs) != 1 {
					return true
				}
				be, ok := s.Rhs[0].(*ast.BinaryExpr)
				if !ok {
					return true
				}
				switch be.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
				default:
					return true
				}
				lhs := types.ExprString(s.Lhs[0])
				if (types.ExprString(be.X) == lhs || types.ExprString(be.Y) == lhs) &&
					isFloat(pass.TypeOf(s.Lhs[0])) && declaredOutside(pass, body, s.Lhs[0]) {
					pass.Reportf(s.TokPos,
						"float accumulation in map iteration order; iterate sorted keys instead")
				}
			}
		case *ast.CallExpr:
			switch fun := s.Fun.(type) {
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
					for _, arg := range s.Args[1:] {
						t := pass.TypeOf(arg)
						if !carriesFloat(t, make(map[types.Type]bool)) {
							continue
						}
						if id, ok := arg.(*ast.Ident); ok && keyObj != nil && pass.TypesInfo.ObjectOf(id) == keyObj {
							continue // collecting keys to sort: the approved fix
						}
						if isFloat(t) {
							pass.Reportf(s.Pos(),
								"float append in map iteration order; collect and sort the keys, then iterate those")
						} else {
							pass.Reportf(s.Pos(),
								"append of a float-carrying %s in map iteration order; collect and sort the keys, then iterate those", t)
						}
					}
				}
			case *ast.SelectorExpr:
				if id, ok := fun.X.(*ast.Ident); ok {
					if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
						name := fun.Sel.Name
						if len(name) >= 5 && (name[:5] == "Print" || name[:5] == "Fprin") {
							pass.Reportf(s.Pos(),
								"fmt.%s inside range over map emits output in map iteration order; iterate sorted keys", name)
						}
					}
				}
			}
		}
		return true
	})
}
