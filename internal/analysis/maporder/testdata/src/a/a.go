// Package a exercises maporder: order-sensitive effects inside
// range-over-map bodies are flagged, the sorted-keys fix and
// order-insensitive bodies are not.
package a

import (
	"fmt"
	"sort"
)

func floatAccum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation in map iteration order`
	}
	for _, v := range m {
		total = total + v // want `float accumulation in map iteration order`
	}
	for _, v := range m {
		total = v*2 + total // want `float accumulation in map iteration order`
	}
	return total
}

type acc struct{ sum float64 }

func fieldAccum(m map[string]float64, a *acc) {
	for _, v := range m {
		a.sum += v // want `float accumulation in map iteration order`
	}
}

func floatAppend(m map[string]float64) []float64 {
	var vals []float64
	for _, v := range m {
		vals = append(vals, v) // want `float append in map iteration order`
	}
	return vals
}

// delta mimics the engine's per-edge accounting terms: a struct carrying
// floats is as order-sensitive to append as a bare float.
type delta struct {
	Edge  int
	Terms []float64
	inner struct{ kwh float64 }
}

func compositeAppend(m map[int]delta, ptrs map[int]*delta) ([]delta, []*delta, [][]float64) {
	var ds []delta
	var ps []*delta
	var rows [][]float64
	for _, d := range m {
		ds = append(ds, d)           // want `append of a float-carrying a\.delta in map iteration order`
		rows = append(rows, d.Terms) // want `append of a float-carrying \[\]float64 in map iteration order`
	}
	for _, p := range ptrs {
		ps = append(ps, p) // want `append of a float-carrying \*a\.delta in map iteration order`
	}
	return ds, ps, rows
}

// floatFree composites are order-insensitive to collect.
type intPair struct{ a, b int }

func intComposite(m map[string]intPair) []intPair {
	var out []intPair
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func output(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map emits output in map iteration order`
	}
}

// sortedKeys is the approved fix: collecting keys (even float keys) for
// sorting is legal, and iterating the sorted slice is not a map range.
func sortedKeys(m map[string]float64, fm map[float64]int) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fkeys := make([]float64, 0, len(fm))
	for k := range fm {
		fkeys = append(fkeys, k)
	}
	sort.Float64s(fkeys)
	total := 0.0
	for _, k := range keys {
		total += m[k]
	}
	return total
}

// orderInsensitive bodies: integer sums are exact, local accumulators reset
// every iteration, and counting does not depend on order.
func orderInsensitive(m map[string]float64) (int, float64) {
	n := 0
	last := 0.0
	for _, v := range m {
		n++
		scaled := 0.0
		scaled += v * 2 // local accumulator, reset each iteration
		if scaled > last {
			last = scaled // max is order-independent; assignment isn't flagged
		}
	}
	return n, last
}

func annotated(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		//lint:allow maporder testdata: Kahan-style compensated sum is order-tolerant here
		total += v
	}
	return total
}
