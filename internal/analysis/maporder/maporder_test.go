package maporder_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analyzertest.Run(t, maporder.Analyzer, "a")
}
