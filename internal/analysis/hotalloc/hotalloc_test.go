package hotalloc_test

import (
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis/analyzertest"
	"github.com/carbonedge/carbonedge/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer, "a")
}
