// Package hotalloc turns the engine's zero-alloc hot-path contract from a
// runtime spot-check into a compile-time fence. Functions whose doc comment
// carries //lint:hotroot (Shard.Step, Network.ForwardBatch, NNRuntime.RunSlot)
// anchor the steady-state slot-stepping paths; every function statically
// reachable from a root — through direct calls, interface dispatch, or
// function values — must not contain an allocating construct:
//
//   - make, new, append
//   - map and slice composite literals
//   - string concatenation (+ / +=)
//   - function literals that capture variables (closures allocate)
//   - interface boxing: converting or assigning a non-pointer concrete
//     value into an interface
//
// Deliberate exceptions carry //lint:allow hotalloc <reason> at the site
// (the grow-only arena appends), and whole subtrees that are off the hot
// path by design carry //lint:cold <reason> on the declaration (the TCP
// wire stepper, whose JSON framing allocates by construction). Reachability
// is recomputed program-wide on every run, so a new call edge anywhere can
// pull previously-cold code into the fence.
package hotalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// Analyzer implements the check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbids allocating constructs (make/append/new, map and slice literals, " +
		"string concat, capturing closures, interface boxing) in any function " +
		"statically reachable from a //lint:hotroot declaration; mark deliberate " +
		"off-path subtrees //lint:cold <reason>",
	Run:    run,
	Global: true,
	Select: selectHot,
}

// selectHot keeps a candidate only when its function is reachable from a
// hot root, and appends an example call chain so the finding explains how
// the hot path gets there.
func selectHot(g *analysis.Graph) func(string) (string, bool) {
	roots := g.HotRoots()
	reached, parent := g.Reachable(roots)
	return func(funcKey string) (string, bool) {
		if !reached[funcKey] {
			return "", false
		}
		return " (hot path: " + g.CallPath(parent, funcKey) + ")", true
	}
}

func run(pass *analysis.Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkBody(pass, fd, analysis.FuncKeyOf(obj))
		}
	}
	return nil, nil
}

// report attaches the function key so merge-time reachability can place the
// candidate in the program call graph.
func report(pass *analysis.Pass, pos token.Pos, funcKey, format string, args ...any) {
	pass.Report(analysis.Diagnostic{
		Pos:     pos,
		Message: fmt.Sprintf(format, args...),
		FuncKey: funcKey,
	})
}

func checkBody(pass *analysis.Pass, fd *ast.FuncDecl, funcKey string) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						report(pass, n.Pos(), funcKey, "make allocates; hot-path code must reuse preallocated buffers")
					case "new":
						report(pass, n.Pos(), funcKey, "new allocates; hot-path code must reuse preallocated values")
					case "append":
						report(pass, n.Pos(), funcKey, "append may grow its backing array; hot-path code must write into preallocated capacity")
					}
				}
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Map:
				report(pass, n.Pos(), funcKey, "map literal allocates; hoist it out of the hot path")
			case *types.Slice:
				report(pass, n.Pos(), funcKey, "slice literal allocates; hoist it out of the hot path")
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(info.TypeOf(n)) && !isConst(info, n) {
				report(pass, n.Pos(), funcKey, "string concatenation allocates; format outside the hot path")
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isString(info.TypeOf(n.Lhs[0])) {
				report(pass, n.Pos(), funcKey, "string concatenation allocates; format outside the hot path")
			}
			checkBoxing(pass, funcKey, n)
		case *ast.GenDecl:
			checkVarBoxing(pass, funcKey, n)
		case *ast.FuncLit:
			if names := capturedVars(info, n); len(names) > 0 {
				report(pass, n.Pos(), funcKey, "function literal captures %s; the closure allocates", strings.Join(names, ", "))
			}
		}
		return true
	})
	checkConversions(pass, fd, funcKey)
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isConst reports whether the expression folds to a constant (constant
// string concatenation happens at compile time and allocates nothing).
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// boxes reports whether assigning an expression of type rhs into a location
// of type lhs stores a concrete non-pointer value in an interface — the
// conversion Go implements with a heap allocation (pointers and interfaces
// re-use their word; untyped nil boxes nothing).
func boxes(lhs, rhs types.Type) bool {
	if lhs == nil || rhs == nil || !types.IsInterface(lhs) {
		return false
	}
	if types.IsInterface(rhs) {
		return false
	}
	switch rhs.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return false // single-pointer-word values need no box
	case *types.Basic:
		if rhs.Underlying().(*types.Basic).Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// checkBoxing flags assignments that box a concrete value into an
// interface-typed location.
func checkBoxing(pass *analysis.Pass, funcKey string, n *ast.AssignStmt) {
	if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
		return
	}
	if len(n.Lhs) != len(n.Rhs) {
		return // multi-value RHS: types come from the call, nothing to convert
	}
	for i, lhs := range n.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		lt := pass.TypeOf(lhs)
		rt := pass.TypeOf(n.Rhs[i])
		if n.Tok == token.DEFINE {
			// x := v never boxes: x's type is v's type.
			continue
		}
		if boxes(lt, rt) {
			report(pass, n.Rhs[i].Pos(), funcKey,
				"assigning %s into an interface allocates the box; keep hot-path values concrete", rt)
		}
	}
}

// checkVarBoxing flags `var x I = v` declarations that box.
func checkVarBoxing(pass *analysis.Pass, funcKey string, n *ast.GenDecl) {
	if n.Tok != token.VAR {
		return
	}
	for _, spec := range n.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok || vs.Type == nil {
			continue
		}
		lt := pass.TypeOf(vs.Type)
		for _, v := range vs.Values {
			if rt := pass.TypeOf(v); boxes(lt, rt) {
				report(pass, v.Pos(), funcKey,
					"assigning %s into an interface allocates the box; keep hot-path values concrete", rt)
			}
		}
	}
}

// checkConversions flags explicit I(x) conversions that box.
func checkConversions(pass *analysis.Pass, fd *ast.FuncDecl, funcKey string) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		if boxes(tv.Type, info.TypeOf(call.Args[0])) {
			report(pass, call.Pos(), funcKey,
				"converting %s to an interface allocates the box; keep hot-path values concrete", info.TypeOf(call.Args[0]))
		}
		return true
	})
}

// capturedVars lists the free variables of a function literal: variables
// used inside the literal but declared outside it (package-level state and
// struct fields excluded — those are not closed over).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[string]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v.Name()] {
			return true
		}
		// Package-level variables are accessed directly, not captured.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true
		}
		// Declared inside the literal (params included): not free.
		if lit.Pos() <= v.Pos() && v.Pos() < lit.End() {
			return true
		}
		seen[v.Name()] = true
		names = append(names, v.Name())
		return true
	})
	sort.Strings(names)
	return names
}
