// Suppression inside grouped declarations: directives ride individual specs
// of a var block, both same-line and line-above.
package a

//lint:hotroot grouped-declaration fixture
func Root3(n int) int {
	var (
		buf = make([]int, n) //lint:allow hotalloc grouped spec suppressed on its own line
		//lint:allow hotalloc grouped spec suppressed from the line above
		big = make([]float64, n)
		m   map[string]int
	)
	m = map[string]int{} // want `map literal allocates`
	return len(buf) + len(big) + len(m)
}
