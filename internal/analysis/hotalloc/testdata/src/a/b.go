// String concatenation, interface boxing, capturing closures, and the
// suppression/directive-hygiene behavior of a Global analyzer.
package a

type ifc interface{ M() }

type conc struct{ v int }

func (c conc) M() {}

//lint:hotroot the formatting path is hot in this fixture
func Root2(label string, c conc) string {
	s := label + "!" // want `string concatenation allocates`
	s += label       // want `string concatenation allocates`
	var i ifc
	i = c // want `assigning a.conc into an interface allocates`
	i.M()
	f := func() int { return len(s) } // want `function literal captures s`
	plain := func() int { return 0 }  // no capture: a plain function value does not allocate
	allowed(f() + plain())
	return s
}

func allowed(n int) {
	_ = make([]int, n) //lint:allow hotalloc fixture warm-up buffer, measured off the steady state
	blockAllowed(n)
}

func blockAllowed(n int) {
	_ = make([]int, n) /*lint:allow hotalloc block-form directives suppress too*/
}

func unreached2(n int) {
	_ = make([]int, n) //lint:allow hotalloc stale excuse // want `unused directive`
}

//lint:hotroot misplaced, a var is not a function declaration // want `misplaced //lint:hotroot directive`
var notAFunc = 3

//lint:cold // want `malformed directive: missing reason`
func noReason() {}
