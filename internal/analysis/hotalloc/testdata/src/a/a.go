// Package a exercises hotalloc reachability: static calls, interface
// dispatch, dynamic calls through function values, //lint:cold pruning, and
// unreachable code staying unflagged.
package a

type Stepper interface{ Step(int) int }

type impl struct{ acc int }

func (p *impl) Step(x int) int {
	p.acc += x
	return grow(p.acc) // static call out of an interface-reached method
}

type holder struct {
	fn func(int) int
}

var sink []int

//lint:hotroot steady-state stepping must not allocate
func Root(s Stepper, h holder, n int) int {
	n += s.Step(1) // interface dispatch resolves to impl.Step
	n += h.fn(n)   // dynamic call resolves to the address-taken target
	n += helper(n)
	cold(n)
	return n
}

func helper(n int) int {
	buf := make([]int, n) // want `make allocates`
	return len(buf)
}

func grow(n int) int {
	sink = append(sink, n) // want `append may grow`
	return len(sink)
}

func target(n int) int {
	m := map[int]int{n: n} // want `map literal allocates`
	s := []int{n}          // want `slice literal allocates`
	p := new(int)          // want `new allocates`
	return m[n] + s[0] + *p
}

// wire takes target's address so Root's dynamic call can reach it.
func wire() holder { return holder{fn: target} }

//lint:cold fixture assembly is off the hot path by design
func cold(n int) {
	_ = make([]int, n) // no finding: cold is never entered
	coldCallee(n)
}

func coldCallee(n int) {
	_ = make([]int, n) // no finding: only reachable through a cold function
}

func unreached(n int) {
	_ = make([]int, n) // no finding: not reachable from any root
}
