//go:build carbonlint_exclude_fixture

// This file is excluded by its build tag, so nothing in it may load or be
// analyzed: the blatant violations below carry no want comments, and the
// suite fails with unexpected diagnostics if the loader stops honoring
// build constraints.
package a

//lint:hotroot excluded file; this root must never enter the graph
func ExcludedRoot() []int {
	return make([]int, 9)
}
