// Package analyzertest runs an analyzer over golden testdata packages and
// checks its diagnostics against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest.
//
// Testdata layout follows the upstream convention: each package lives at
// testdata/src/<rel> beside the analyzer's _test.go, and <rel> becomes the
// package's import path verbatim (so a package at src/internal/numeric
// exercises a path-based exemption). A line expecting diagnostics carries a
// trailing comment of one or more quoted regular expressions:
//
//	total += v // want `float accumulation`
//
// Every finding must be matched by a want and every want by a finding;
// //lint:allow suppression runs exactly as in carbonlint, so testdata can
// assert both that directives silence findings and that unused or malformed
// directives are themselves reported (analyzer name "allow").
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"github.com/carbonedge/carbonedge/internal/analysis"
)

// wantRx extracts the quoted expectation patterns from a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type expectation struct {
	rx      *regexp.Regexp
	matched bool
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("analyzertest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// parseWants collects the expectations of every file in every testdata
// package directory, keyed by filename and line. Build-tag-excluded files
// (an arm64 fixture on an amd64 host) are raw-parsed from disk: analyzers
// that scan excluded sources themselves (simdcover's architecture-universal
// kernel check) report positions inside them, so their want comments must
// participate like any other.
func parseWants(t *testing.T, pkgs []*analysis.Package) map[string]map[int][]*expectation {
	t.Helper()
	wants := make(map[string]map[int][]*expectation)
	addComment := func(fset *token.FileSet, c *ast.Comment) {
		text, ok := cutWant(c)
		if !ok {
			return
		}
		pos := fset.Position(c.Pos())
		quoted := wantRx.FindAllString(text, -1)
		if len(quoted) == 0 {
			t.Errorf("%s: want comment with no quoted patterns", pos)
			return
		}
		for _, q := range quoted {
			pattern := strings.Trim(q, "`")
			if q[0] == '"' {
				var err error
				pattern, err = strconv.Unquote(q)
				if err != nil {
					t.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					continue
				}
			}
			rx, err := regexp.Compile(pattern)
			if err != nil {
				t.Errorf("%s: bad want regexp %q: %v", pos, pattern, err)
				continue
			}
			lines := wants[pos.Filename]
			if lines == nil {
				lines = make(map[int][]*expectation)
				wants[pos.Filename] = lines
			}
			lines[pos.Line] = append(lines[pos.Line], &expectation{rx: rx})
		}
	}
	for _, pkg := range pkgs {
		loaded := make(map[string]bool)
		dir := ""
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			loaded[name] = true
			if dir == "" {
				dir = filepath.Dir(name)
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					addComment(pkg.Fset, c)
				}
			}
		}
		if dir == "" {
			continue
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Errorf("analyzertest: reading %s: %v", dir, err)
			continue
		}
		fset := token.NewFileSet()
		for _, e := range entries {
			name := filepath.Join(dir, e.Name())
			if e.IsDir() || !strings.HasSuffix(name, ".go") || loaded[name] {
				continue
			}
			f, perr := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
			if perr != nil {
				continue // unparseable excluded files are an analyzer concern, not ours
			}
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					addComment(fset, c)
				}
			}
		}
	}
	return wants
}

// cutWant finds a want clause anywhere in the comment, so expectations can
// ride inside //lint:allow directives (whose findings point at their own
// line) as well as stand alone after flagged code.
func cutWant(c *ast.Comment) (string, bool) {
	const marker = "// want "
	idx := strings.Index(c.Text, marker)
	if idx < 0 {
		return "", false
	}
	return c.Text[idx+len(marker):], true
}

// Run loads each testdata package under testdata/src/<rel>, applies the
// analyzer through the same runner carbonlint uses, and reports any
// mismatch between findings and want comments as test errors.
func Run(t *testing.T, a *analysis.Analyzer, rels ...string) {
	t.Helper()
	root, err := moduleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := analysis.LoadTestdata(root, "testdata", rels...)
	if err != nil {
		t.Fatal(err)
	}
	findings, err := analysis.RunAnalyzers(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := parseWants(t, pkgs)
	for _, f := range findings {
		exps := wants[f.Pos.Filename][f.Pos.Line]
		matched := false
		for _, exp := range exps {
			if !exp.matched && exp.rx.MatchString(f.Message) {
				exp.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: [%s] %s", f.Pos, f.Analyzer, f.Message)
		}
	}
	for file, lines := range wants {
		for line, exps := range lines {
			for _, exp := range exps {
				if !exp.matched {
					t.Errorf("%s:%d: expected diagnostic matching %q, got none", file, line, exp.rx)
				}
			}
		}
	}
}
