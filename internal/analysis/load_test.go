package analysis

import (
	"go/token"
	"strings"
	"testing"
)

// TestLoadRealPackages exercises the production loader against the module
// itself: packages come back type-checked, with resolved imports and usable
// position information.
func TestLoadRealPackages(t *testing.T) {
	pkgs, err := Load("../..", "./internal/numeric", "./internal/engine")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	// Sorted by import path: engine before numeric.
	if !strings.HasSuffix(pkgs[0].PkgPath, "internal/engine") {
		t.Errorf("pkgs[0] = %s, want .../internal/engine", pkgs[0].PkgPath)
	}
	for _, pkg := range pkgs {
		if len(pkg.Files) == 0 {
			t.Errorf("%s: no files", pkg.PkgPath)
		}
		if pkg.Types == nil || !pkg.Types.Complete() {
			t.Errorf("%s: incomplete type information", pkg.PkgPath)
		}
		if len(pkg.Info.Uses) == 0 {
			t.Errorf("%s: empty Uses map", pkg.PkgPath)
		}
	}
	// Engine's SplitRNG-free randomness contract depends on cross-package
	// resolution: its imported market package must have real types.
	engine := pkgs[0]
	market := engine.Types.Imports()
	found := false
	for _, imp := range market {
		if strings.HasSuffix(imp.Path(), "internal/market") {
			found = true
			if imp.Scope().Lookup("Prices") == nil {
				t.Errorf("market export data missing Prices")
			}
		}
	}
	if !found {
		t.Errorf("engine imports resolved without internal/market")
	}
}

// TestRunAnalyzersSuppression pins the allow-directive semantics at the
// framework level: same-line and line-above directives suppress, and the
// runner reports malformed/unused directives itself.
func TestRunAnalyzersSuppression(t *testing.T) {
	pkgs, err := Load("../..", "./internal/analysis/nodeterm")
	if err != nil {
		t.Fatal(err)
	}
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every file's package clause once",
		Run: func(p *Pass) (any, error) {
			for _, f := range p.Files {
				p.Reportf(f.Package, "package clause")
			}
			return nil, nil
		},
	}
	findings, err := RunAnalyzers(pkgs, []*Analyzer{probe})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("probe reported nothing")
	}
	for _, f := range findings {
		if f.Analyzer != "probe" {
			t.Errorf("unexpected analyzer %q in %s", f.Analyzer, f)
		}
		if !f.Pos.IsValid() || f.Pos.Line == 0 {
			t.Errorf("finding without position: %s", f)
		}
	}
}

// TestFindingString pins the diagnostic format the Makefile and CI grep.
func TestFindingString(t *testing.T) {
	f := Finding{
		Analyzer: "nodeterm",
		Pos:      token.Position{Filename: "x.go", Line: 3, Column: 7},
		Message:  "msg",
	}
	if got, want := f.String(), "x.go:3:7: [nodeterm] msg"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

// TestLintCachedSoundness pins the cache contract end to end: a cold run
// over real packages misses and populates the cache, a warm run over the
// same tree hits every entry, and both runs report byte-identical findings
// (the probe fires on every file, so the comparison is not vacuous).
func TestLintCachedSoundness(t *testing.T) {
	probe := &Analyzer{
		Name: "probe",
		Doc:  "reports every file's package clause once",
		Run: func(p *Pass) (any, error) {
			for _, f := range p.Files {
				p.Reportf(f.Package, "package clause")
			}
			return nil, nil
		},
	}
	cacheDir := t.TempDir()

	cold, coldStats, err := LintCached("../..", cacheDir, []*Analyzer{probe}, "./internal/numeric", "./internal/market")
	if err != nil {
		t.Fatal(err)
	}
	if len(cold) == 0 {
		t.Fatal("cold run reported nothing")
	}
	if coldStats.Misses == 0 || coldStats.Hits != 0 {
		t.Errorf("cold run stats = %+v, want only misses", coldStats)
	}

	warm, warmStats, err := LintCached("../..", cacheDir, []*Analyzer{probe}, "./internal/numeric", "./internal/market")
	if err != nil {
		t.Fatal(err)
	}
	if warmStats.Hits == 0 || warmStats.Misses != 0 {
		t.Errorf("warm run stats = %+v, want only hits", warmStats)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm run reported %d findings, cold %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].String() != cold[i].String() {
			t.Errorf("finding %d drifted across cache: cold %s, warm %s", i, cold[i], warm[i])
		}
	}
}
