package bandit

import (
	"math"
	"math/rand"
	"testing"
)

func TestUCB2ConstructorErrors(t *testing.T) {
	if _, err := NewUCB2(0, 0.5, 1); err == nil {
		t.Error("expected error for zero arms")
	}
	if _, err := NewUCB2(3, 0, 1); err == nil {
		t.Error("expected error for alpha = 0")
	}
	if _, err := NewUCB2(3, 1, 1); err == nil {
		t.Error("expected error for alpha = 1")
	}
	if _, err := NewUCB2(3, 0.5, 0); err == nil {
		t.Error("expected error for zero loss scale")
	}
}

func TestUCB2TriesEveryArmFirst(t *testing.T) {
	u, err := NewUCB2(5, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 5; i++ {
		arm := u.SelectArm()
		if seen[arm] {
			t.Fatalf("arm %d repeated before initialization finished", arm)
		}
		seen[arm] = true
		u.Update(0.5)
	}
}

func TestUCB2ConvergesToBestArm(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	means := []float64{0.8, 0.2, 0.6, 0.7} // best arm = 1 (lowest loss)
	u, err := NewUCB2(len(means), 0.3, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20000
	_, _, pulls := runStochastic(t, u, means, 0.1, horizon, rng)
	frac := float64(pulls[1]) / horizon
	if frac < 0.7 {
		t.Errorf("best-arm fraction = %v (pulls=%v)", frac, pulls)
	}
}

func TestUCB2LogarithmicSwitches(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	means := []float64{0.5, 0.4, 0.6}
	u, err := NewUCB2(len(means), 0.5, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 30000
	_, switches, _ := runStochastic(t, u, means, 0.2, horizon, rng)
	// Epochs grow geometrically, so switches should be far below sqrt(T).
	if float64(switches) > math.Sqrt(horizon) {
		t.Errorf("switches = %d, want << sqrt(T) = %v", switches, math.Sqrt(horizon))
	}
	if got := u.Switches(); got != switches {
		t.Errorf("internal switches %d != observed %d", got, switches)
	}
}

func TestUCB2ProtocolEnforced(t *testing.T) {
	u, err := NewUCB2(2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	u.SelectArm()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double SelectArm must panic")
			}
		}()
		u.SelectArm()
	}()
	u.Update(0.3)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Update without SelectArm must panic")
			}
		}()
		u.Update(0.3)
	}()
}

func TestUCB2RewardClamping(t *testing.T) {
	u, err := NewUCB2(2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Losses above the scale or negative must not blow up the means.
	for i := 0; i < 10; i++ {
		u.SelectArm()
		u.Update(100)
	}
	for i := 0; i < 10; i++ {
		u.SelectArm()
		u.Update(-50)
	}
	for _, m := range u.means {
		if m < 0 || m > 1 {
			t.Errorf("mean reward %v escaped [0,1]", m)
		}
	}
}

func TestUCB2SelectionsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	u, err := NewUCB2(3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 777
	runStochastic(t, u, []float64{0.3, 0.3, 0.3}, 0.1, horizon, rng)
	total := 0
	for _, c := range u.Selections() {
		total += c
	}
	if total != horizon {
		t.Errorf("selections sum to %d, want %d", total, horizon)
	}
}

func TestUCB2TauMonotone(t *testing.T) {
	u, err := NewUCB2(2, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	prev := 0
	for r := 0; r < 30; r++ {
		cur := u.tau(r)
		if cur < prev {
			t.Fatalf("tau(%d) = %d < tau(%d) = %d", r, cur, r-1, prev)
		}
		prev = cur
	}
	if u.tau(0) != 1 {
		t.Errorf("tau(0) = %d, want 1", u.tau(0))
	}
}
