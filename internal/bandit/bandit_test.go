package bandit

import (
	"math"
	"math/rand"
	"testing"
)

// runStochastic plays a policy for horizon slots against arms whose losses
// are Gaussian around the given means, returning the cumulative realized
// loss and the number of arm switches observed by the caller.
func runStochastic(t *testing.T, p Policy, means []float64, sigma float64, horizon int, rng *rand.Rand) (totalLoss float64, switches int, pulls []int) {
	t.Helper()
	pulls = make([]int, len(means))
	prev := -1
	for slot := 0; slot < horizon; slot++ {
		arm := p.SelectArm()
		if arm < 0 || arm >= len(means) {
			t.Fatalf("arm %d out of range", arm)
		}
		if arm != prev {
			switches++
			prev = arm
		}
		pulls[arm]++
		loss := means[arm] + sigma*rng.NormFloat64()
		if loss < 0 {
			loss = 0
		}
		totalLoss += loss
		p.Update(loss)
	}
	return totalLoss, switches, pulls
}

func TestRandomPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p, err := NewRandom(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "Random" || p.NumArms() != 4 {
		t.Error("metadata mismatch")
	}
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		arm := p.SelectArm()
		counts[arm]++
		p.Update(0)
	}
	for i, c := range counts {
		if math.Abs(float64(c)/40000-0.25) > 0.02 {
			t.Errorf("arm %d frequency %v, want ~0.25", i, float64(c)/40000)
		}
	}
	if _, err := NewRandom(0, rng); err == nil {
		t.Error("expected error for zero arms")
	}
}

func TestGreedyPolicy(t *testing.T) {
	p, err := NewGreedy([]float64{3, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := p.SelectArm(); got != 1 {
			t.Fatalf("Greedy selected %d, want 1", got)
		}
		p.Update(100) // feedback must not change the choice
	}
	if _, err := NewGreedy(nil); err == nil {
		t.Error("expected error for empty scores")
	}
}

func TestFixedPolicy(t *testing.T) {
	p, err := NewFixed(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if p.SelectArm() != 2 {
		t.Error("Fixed did not play its arm")
	}
	if _, err := NewFixed(5, 5); err == nil {
		t.Error("expected error for out-of-range arm")
	}
	if _, err := NewFixed(-1, 5); err == nil {
		t.Error("expected error for negative arm")
	}
}

func TestBlockedConstructorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	if _, err := NewBlockedTsallisINF(0, 1, rng); err == nil {
		t.Error("expected error for zero arms")
	}
	if _, err := NewBlockedTsallisINF(3, -1, rng); err == nil {
		t.Error("expected error for negative u")
	}
	if _, err := NewBlockedTsallisINF(3, math.NaN(), rng); err == nil {
		t.Error("expected error for NaN u")
	}
}

func TestBlockScheduleMatchesTheorem1(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 6
	u := 2.5
	b, err := NewBlockedTsallisINF(n, u, rng)
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 100; k++ {
		d := 1.5 * u * math.Sqrt(float64(k)/float64(n))
		wantLen := int(math.Ceil(d))
		if wantLen < 1 {
			wantLen = 1
		}
		if got := b.BlockLength(k); got != wantLen {
			t.Fatalf("BlockLength(%d) = %d, want %d", k, got, wantLen)
		}
		wantEta := 2 / (d + 1) * math.Sqrt(2/float64(k))
		if got := b.LearningRate(k); math.Abs(got-wantEta) > 1e-12 {
			t.Fatalf("LearningRate(%d) = %v, want %v", k, got, wantEta)
		}
	}
	// Learning rates are non-increasing as Theorem 1 requires.
	for k := 2; k <= 100; k++ {
		if b.LearningRate(k) > b.LearningRate(k-1) {
			t.Fatalf("eta increased at k=%d", k)
		}
	}
}

func TestBlockScheduleCoversHorizon(t *testing.T) {
	// Theorem 1's proof: the first K* = N^{1/3}(T/u)^{2/3} + 1 blocks cover
	// the horizon T.
	rng := rand.New(rand.NewSource(4))
	for _, tc := range []struct {
		n int
		u float64
		T int
	}{
		{6, 0.5, 160}, {6, 2, 1000}, {3, 5, 5000}, {10, 1, 200},
	} {
		b, err := NewBlockedTsallisINF(tc.n, tc.u, rng)
		if err != nil {
			t.Fatal(err)
		}
		kStar := int(math.Pow(float64(tc.n), 1.0/3)*math.Pow(float64(tc.T)/tc.u, 2.0/3)) + 1
		sum := 0
		for k := 1; k <= kStar; k++ {
			sum += b.BlockLength(k)
		}
		if sum < tc.T {
			t.Errorf("n=%d u=%v T=%d: first %d blocks cover only %d slots", tc.n, tc.u, tc.T, kStar, sum)
		}
	}
}

func TestUnblockedIsLengthOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b, err := NewTsallisINF(4, rng)
	if err != nil {
		t.Fatal(err)
	}
	if b.Name() != "TsallisINF" {
		t.Errorf("Name = %q", b.Name())
	}
	for k := 1; k <= 50; k++ {
		if b.BlockLength(k) != 1 {
			t.Fatalf("unblocked BlockLength(%d) = %d", k, b.BlockLength(k))
		}
	}
}

func TestBlockedProtocolEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	b, err := NewBlockedTsallisINF(3, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	b.SelectArm()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double SelectArm must panic")
			}
		}()
		b.SelectArm()
	}()
	b.Update(1)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Update without SelectArm must panic")
			}
		}()
		b.Update(1)
	}()
}

func TestBlockedConvergesToBestArm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	means := []float64{1.0, 0.4, 0.9, 1.2, 0.8, 1.1} // best arm = 1
	b, err := NewBlockedTsallisINF(len(means), 1.0, rng)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20000
	_, _, pulls := runStochastic(t, b, means, 0.2, horizon, rng)
	frac := float64(pulls[1]) / horizon
	if frac < 0.7 {
		t.Errorf("best-arm fraction = %v, want >= 0.7 (pulls=%v)", frac, pulls)
	}
}

func TestBlockedSublinearRegret(t *testing.T) {
	// Average per-slot regret must shrink as the horizon grows.
	means := []float64{0.6, 0.3, 0.8, 0.5}
	best := 0.3
	avgRegret := func(horizon int, seed int64) float64 {
		rng := rand.New(rand.NewSource(seed))
		b, err := NewBlockedTsallisINF(len(means), 0.8, rng)
		if err != nil {
			t.Fatal(err)
		}
		total, _, _ := runStochastic(t, b, means, 0.15, horizon, rng)
		return (total - best*float64(horizon)) / float64(horizon)
	}
	short := (avgRegret(500, 8) + avgRegret(500, 9) + avgRegret(500, 10)) / 3
	long := (avgRegret(20000, 8) + avgRegret(20000, 9) + avgRegret(20000, 10)) / 3
	if long > short*0.6 {
		t.Errorf("per-slot regret did not shrink: short=%v long=%v", short, long)
	}
}

func TestBlockedFewerSwitchesThanUnblocked(t *testing.T) {
	means := []float64{0.5, 0.45, 0.55, 0.5, 0.6, 0.4}
	const horizon = 5000
	rngA := rand.New(rand.NewSource(11))
	blocked, err := NewBlockedTsallisINF(len(means), 3, rngA)
	if err != nil {
		t.Fatal(err)
	}
	_, swBlocked, _ := runStochastic(t, blocked, means, 0.3, horizon, rngA)

	rngB := rand.New(rand.NewSource(11))
	plain, err := NewTsallisINF(len(means), rngB)
	if err != nil {
		t.Fatal(err)
	}
	_, swPlain, _ := runStochastic(t, plain, means, 0.3, horizon, rngB)

	if swBlocked*3 > swPlain {
		t.Errorf("blocked switches %d not clearly below unblocked %d", swBlocked, swPlain)
	}
	// Internal switch counter agrees with external observation.
	if got := blocked.Switches(); got != swBlocked {
		t.Errorf("internal switches %d != observed %d", got, swBlocked)
	}
}

func TestBlockedSwitchesBoundedByBlocks(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	b, err := NewBlockedTsallisINF(5, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	runStochastic(t, b, []float64{1, 2, 3, 4, 5}, 0.5, 3000, rng)
	if b.Switches() > b.Blocks() {
		t.Errorf("switches %d exceed blocks %d", b.Switches(), b.Blocks())
	}
}

func TestUnbiasedEstimator(t *testing.T) {
	// Over many independent one-block runs with a fixed loss vector, the
	// mean of the importance-weighted estimate must converge to the true
	// per-arm loss (the paper's Line 8 unbiasedness claim).
	const trials = 60000
	losses := []float64{2.0, 5.0, 3.0}
	sums := make([]float64, len(losses))
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < trials; trial++ {
		b, err := NewTsallisINF(len(losses), rng)
		if err != nil {
			t.Fatal(err)
		}
		arm := b.SelectArm()
		b.Update(losses[arm])
		est := b.EstimatedLosses()
		for i, e := range est {
			sums[i] += e
		}
	}
	for i, want := range losses {
		got := sums[i] / trials
		if math.Abs(got-want) > 0.15 {
			t.Errorf("E[estimate[%d]] = %v, want %v", i, got, want)
		}
	}
}

func TestBlockedSelectionsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	b, err := NewBlockedTsallisINF(4, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 1234
	runStochastic(t, b, []float64{1, 1, 1, 1}, 0.1, horizon, rng)
	total := 0
	for _, c := range b.Selections() {
		total += c
	}
	if total != horizon {
		t.Errorf("selection counts sum to %d, want %d", total, horizon)
	}
	// Probabilities of the current block form a distribution.
	p := b.Probabilities()
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatal("negative probability")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %v", sum)
	}
}

func TestBlockedDeterministicGivenSeed(t *testing.T) {
	run := func() []int {
		rng := rand.New(rand.NewSource(15))
		b, err := NewBlockedTsallisINF(4, 1.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		arms := make([]int, 200)
		for i := range arms {
			arms[i] = b.SelectArm()
			b.Update(float64(arms[i]) * 0.3)
		}
		return arms
	}
	a, bb := run(), run()
	for i := range a {
		if a[i] != bb[i] {
			t.Fatal("same seed produced different arm sequences")
		}
	}
}

// mustPanic asserts fn panics (the policies' protocol-misuse contract).
func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	fn()
}

// TestSkipContract: every policy implements Skipper; Skip replaces the
// Update of the preceding SelectArm, and for stateful policies it obeys the
// same alternation contract Update does.
func TestSkipContract(t *testing.T) {
	rng := func(s int64) *rand.Rand { return rand.New(rand.NewSource(s)) }
	blocked, err := NewBlockedTsallisINF(3, 1, rng(1))
	if err != nil {
		t.Fatal(err)
	}
	exp3, err := NewEXP3(3, 0.1, 1, rng(2))
	if err != nil {
		t.Fatal(err)
	}
	ucb2, err := NewUCB2(3, 0.5, 1)
	if err != nil {
		t.Fatal(err)
	}
	eps, err := NewEpsilonGreedy(3, 0.1, rng(3))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{blocked, exp3, ucb2, eps} {
		s, ok := p.(Skipper)
		if !ok {
			t.Fatalf("%s does not implement Skipper", p.Name())
		}
		mustPanic(t, p.Name()+" skip-before-select", s.Skip)
		for slot := 0; slot < 20; slot++ {
			arm := p.SelectArm()
			if arm < 0 || arm >= p.NumArms() {
				t.Fatalf("%s: arm %d out of range", p.Name(), arm)
			}
			if slot%3 == 0 {
				s.Skip()
			} else {
				p.Update(0.4)
			}
		}
		mustPanic(t, p.Name()+" double-skip", func() { _ = p.SelectArm(); s.Skip(); s.Skip() })
	}

	// Stateless baselines tolerate Skip at any time.
	random, err := NewRandom(3, rng(4))
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := NewGreedy([]float64{0.3, 0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := NewFixed(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []Policy{random, greedy, fixed} {
		s, ok := p.(Skipper)
		if !ok {
			t.Fatalf("%s does not implement Skipper", p.Name())
		}
		s.Skip() // no-op, never panics
		_ = p.SelectArm()
		s.Skip()
	}
}

// TestBlockedSkipKeepsEstimatorUnbiased pins Algorithm 1's degraded-mode
// semantics: skipped slots advance the block schedule but contribute no loss,
// so a fully-skipped block leaves the importance-weighted estimates
// untouched, while served slots keep feeding them.
func TestBlockedSkipKeepsEstimatorUnbiased(t *testing.T) {
	p, err := NewBlockedTsallisINF(3, 2, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	// Skip the entire first block.
	_ = p.SelectArm()
	firstBlock := p.Blocks()
	for {
		p.Skip()
		if p.Blocks() != firstBlock {
			t.Fatal("Blocks advanced without SelectArm")
		}
		// The next SelectArm starts a new block once the current is spent.
		_ = p.SelectArm()
		if p.Blocks() != firstBlock {
			break
		}
	}
	for _, e := range p.EstimatedLosses() {
		if e != 0 {
			t.Fatalf("skipped block leaked into the estimator: %v", p.EstimatedLosses())
		}
	}
	// Serve the current block normally: the estimator must move.
	p.Update(0.9)
	for block := p.Blocks(); p.Blocks() == block; {
		_ = p.SelectArm()
		p.Update(0.9)
	}
	moved := false
	for _, e := range p.EstimatedLosses() {
		if e != 0 {
			moved = true
		}
	}
	if !moved {
		t.Error("served block did not feed the estimator")
	}
}
