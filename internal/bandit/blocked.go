package bandit

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// BlockedTsallisINF is the paper's Algorithm 1: online model selection with
// bounded switching via block-wise Tsallis-INF.
//
// For edge i with download cost u and N models, block k has length
//
//	|B_k| = max(ceil(d_k), 1),  d_k = (3*u/2) * sqrt(k/N)
//
// and learning rate
//
//	eta_k = 2/(d_k + 1) * sqrt(2/k).
//
// The arm J_k is drawn once per block from the Tsallis OMD distribution over
// cumulative importance-weighted loss estimates; the per-block cumulative
// loss c_{k,J} is fed back through the unbiased estimator c_{k,J}/p_{k,J}.
//
// Setting u = 0 degenerates the block schedule to length-1 blocks and
// recovers plain (anytime) Tsallis-INF, which is exactly the paper's
// unblocked "Tsallis-INF" baseline; NewTsallisINF exposes that directly.
type BlockedTsallisINF struct {
	name string
	n    int
	u    float64
	rng  *rand.Rand

	estLoss []float64 // \hat{C}: cumulative importance-weighted losses
	probs   []float64 // p_{k,n} of the current block

	k          int // current block index (1-based once started)
	remaining  int // slots remaining in the current block
	currentArm int
	currentP   float64 // probability with which currentArm was drawn
	blockLoss  float64 // accumulated loss within the current block

	awaitingUpdate bool
	switches       int
	selections     []int // per-arm selection counts (slots)
}

var _ Policy = (*BlockedTsallisINF)(nil)

// NewBlockedTsallisINF creates Algorithm 1 for one edge. u is the edge's
// model-download (switching) cost u_i; larger u yields longer blocks and
// fewer switches.
func NewBlockedTsallisINF(numArms int, u float64, rng *rand.Rand) (*BlockedTsallisINF, error) {
	if numArms <= 0 {
		return nil, fmt.Errorf("bandit: numArms must be positive, got %d", numArms)
	}
	if u < 0 || math.IsNaN(u) || math.IsInf(u, 0) {
		return nil, fmt.Errorf("bandit: invalid switching cost u=%g", u)
	}
	name := "BlockedTsallisINF"
	if u == 0 {
		name = "TsallisINF"
	}
	return &BlockedTsallisINF{
		name:       name,
		n:          numArms,
		u:          u,
		rng:        rng,
		estLoss:    make([]float64, numArms),
		probs:      make([]float64, numArms),
		selections: make([]int, numArms),
		currentArm: -1,
	}, nil
}

// NewTsallisINF creates the paper's unblocked Tsallis-INF baseline (block
// length 1, anytime learning rate), which ignores switching cost.
func NewTsallisINF(numArms int, rng *rand.Rand) (*BlockedTsallisINF, error) {
	return NewBlockedTsallisINF(numArms, 0, rng)
}

// BlockLength returns |B_k| for 1-based block index k.
func (b *BlockedTsallisINF) BlockLength(k int) int {
	d := b.d(k)
	l := int(math.Ceil(d))
	if l < 1 {
		l = 1
	}
	return l
}

// LearningRate returns eta_k for 1-based block index k.
func (b *BlockedTsallisINF) LearningRate(k int) float64 {
	return 2 / (b.d(k) + 1) * math.Sqrt(2/float64(k))
}

// d computes d_k = (3u/2) sqrt(k/N).
func (b *BlockedTsallisINF) d(k int) float64 {
	return 1.5 * b.u * math.Sqrt(float64(k)/float64(b.n))
}

// Name implements Policy.
func (b *BlockedTsallisINF) Name() string { return b.name }

// NumArms implements Policy.
func (b *BlockedTsallisINF) NumArms() int { return b.n }

// SelectArm implements Policy.
func (b *BlockedTsallisINF) SelectArm() int {
	if b.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: SelectArm called twice without Update")
	}
	if b.remaining == 0 {
		b.startBlock()
	}
	b.awaitingUpdate = true
	b.selections[b.currentArm]++
	return b.currentArm
}

// startBlock begins block k+1: recompute the OMD distribution and draw the
// block's arm.
func (b *BlockedTsallisINF) startBlock() {
	b.k++
	eta := b.LearningRate(b.k)
	if _, err := numeric.TsallisWeights(b.estLoss, eta, b.probs); err != nil {
		// The loss estimates are finite by construction, so the solver can
		// only fail on programmer error; fail loudly rather than silently
		// biasing exploration.
		//lint:allow panicpolicy solver failure on by-construction-finite inputs is a programmer error; Policy has no error channel
		panic(fmt.Sprintf("bandit: tsallis step failed: %v", err))
	}
	sampler, err := numeric.NewWeightedSampler(b.probs)
	if err != nil {
		//lint:allow panicpolicy solver failure on by-construction-finite inputs is a programmer error; Policy has no error channel
		panic(fmt.Sprintf("bandit: sampler: %v", err))
	}
	arm := sampler.Sample(b.rng)
	if arm != b.currentArm && b.currentArm >= 0 {
		b.switches++
	} else if b.currentArm < 0 {
		// First block always incurs the initial download.
		b.switches++
	}
	b.currentArm = arm
	b.currentP = b.probs[arm]
	b.remaining = b.BlockLength(b.k)
	b.blockLoss = 0
}

// Update implements Policy.
func (b *BlockedTsallisINF) Update(loss float64) {
	if !b.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: Update called without SelectArm")
	}
	b.awaitingUpdate = false
	b.blockLoss += loss
	b.remaining--
	if b.remaining == 0 {
		// End of block: unbiased importance-weighted estimate.
		b.estLoss[b.currentArm] += b.blockLoss / b.currentP
	}
}

// Skip implements Skipper: the slot counts against the current block (the
// block schedule tracks real time slots), but contributes no loss to the
// block's estimate, so the end-of-block importance-weighted estimator sums
// only the losses of slots actually served and stays unbiased for them.
func (b *BlockedTsallisINF) Skip() {
	if !b.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update-or-Skip must alternate; the interface has no error channel for misuse
		panic("bandit: Skip called without SelectArm")
	}
	b.awaitingUpdate = false
	b.remaining--
	if b.remaining == 0 {
		b.estLoss[b.currentArm] += b.blockLoss / b.currentP
	}
}

// Switches returns the number of arm changes so far, counting the initial
// download (matching the paper's switching-cost accounting, which charges
// the first block).
func (b *BlockedTsallisINF) Switches() int { return b.switches }

// Blocks returns how many blocks have been started.
func (b *BlockedTsallisINF) Blocks() int { return b.k }

// Selections returns per-arm slot counts (copy).
func (b *BlockedTsallisINF) Selections() []int {
	out := make([]int, len(b.selections))
	copy(out, b.selections)
	return out
}

// Probabilities returns the sampling distribution of the current block
// (copy); useful for tests and diagnostics.
func (b *BlockedTsallisINF) Probabilities() []float64 {
	out := make([]float64, len(b.probs))
	copy(out, b.probs)
	return out
}

// EstimatedLosses returns the cumulative importance-weighted loss estimates
// (copy).
func (b *BlockedTsallisINF) EstimatedLosses() []float64 {
	out := make([]float64, len(b.estLoss))
	copy(out, b.estLoss)
	return out
}
