package bandit

import (
	"math"
	"math/rand"
	"testing"
)

// Empirical verification of Theorem 1: the regret-plus-switching-cost of
// Algorithm 1 grows sub-linearly in T. We estimate the growth exponent by
// regressing log(regret) on log(T) across a geometric horizon sweep and
// require it to be clearly below 1 (linear growth).

// regretPlusSwitching plays the policy against Gaussian arms and returns
// regret against the best fixed arm plus u * switches.
func regretPlusSwitching(t *testing.T, horizon int, u float64, seed int64) float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	means := []float64{0.55, 0.3, 0.6, 0.45, 0.7, 0.5}
	b, err := NewBlockedTsallisINF(len(means), u, rng)
	if err != nil {
		t.Fatal(err)
	}
	total, switches, _ := runStochastic(t, b, means, 0.2, horizon, rng)
	best := 0.3
	return (total - best*float64(horizon)) + u*float64(switches)
}

func TestTheorem1SublinearGrowthExponent(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon sweep")
	}
	horizons := []int{2000, 4000, 8000, 16000, 32000}
	const (
		u     = 1.0
		seeds = 3
	)
	var logT, logR []float64
	for _, h := range horizons {
		sum := 0.0
		for s := int64(0); s < seeds; s++ {
			sum += regretPlusSwitching(t, h, u, 100+s)
		}
		avg := sum / seeds
		if avg <= 0 {
			avg = 1 // regret can dip around zero at small T; guard the log
		}
		logT = append(logT, math.Log(float64(h)))
		logR = append(logR, math.Log(avg))
	}
	slope := regressSlope(logT, logR)
	t.Logf("empirical regret growth exponent: %.3f (Theorem 1 predicts ~1/3 for the leading term)", slope)
	if slope > 0.85 {
		t.Errorf("regret growth exponent %.3f looks linear", slope)
	}
}

func TestTheorem1SwitchesGrowSublinearly(t *testing.T) {
	if testing.Short() {
		t.Skip("long horizon sweep")
	}
	// The number of switches is bounded by the number of blocks K ~
	// N^{1/3} (T/u)^{2/3}; estimate the exponent of switches vs T.
	horizons := []int{2000, 8000, 32000}
	var logT, logS []float64
	for _, h := range horizons {
		rng := rand.New(rand.NewSource(7))
		means := []float64{0.55, 0.3, 0.6, 0.45, 0.7, 0.5}
		b, err := NewBlockedTsallisINF(len(means), 1.0, rng)
		if err != nil {
			t.Fatal(err)
		}
		_, switches, _ := runStochastic(t, b, means, 0.2, h, rng)
		logT = append(logT, math.Log(float64(h)))
		logS = append(logS, math.Log(float64(switches)))
	}
	slope := regressSlope(logT, logS)
	t.Logf("empirical switch growth exponent: %.3f (block bound predicts <= 2/3)", slope)
	if slope > 0.8 {
		t.Errorf("switch count grows with exponent %.3f, want <= ~2/3", slope)
	}
}

// regressSlope returns the least-squares slope of y on x.
func regressSlope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	return (n*sxy - sx*sy) / (n*sxx - sx*sx)
}
