package bandit

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/carbonedge/carbonedge/internal/numeric"
)

// EXP3 (Auer et al. 2002) is the classical adversarial bandit with
// exponential weights and importance-weighted loss estimates. It is not one
// of the paper's evaluated baselines but the standard reference point for
// adversarial bandits; it rounds out the policy set for ablations. Losses
// are normalized by lossScale into [0, 1].
type EXP3 struct {
	n         int
	gamma     float64 // exploration mix in (0, 1]
	lossScale float64
	rng       *rand.Rand

	weights []float64
	probs   []float64

	currentArm     int
	currentP       float64
	awaitingUpdate bool
	selections     []int
	switches       int
	prevArm        int
}

var _ Policy = (*EXP3)(nil)

// NewEXP3 creates an EXP3 policy. gamma in (0, 1] mixes uniform
// exploration; lossScale > 0 maps losses into [0, 1].
func NewEXP3(numArms int, gamma, lossScale float64, rng *rand.Rand) (*EXP3, error) {
	if numArms <= 0 {
		return nil, fmt.Errorf("bandit: numArms must be positive, got %d", numArms)
	}
	if gamma <= 0 || gamma > 1 {
		return nil, fmt.Errorf("bandit: gamma must be in (0,1], got %g", gamma)
	}
	if lossScale <= 0 {
		return nil, fmt.Errorf("bandit: lossScale must be positive, got %g", lossScale)
	}
	e := &EXP3{
		n:          numArms,
		gamma:      gamma,
		lossScale:  lossScale,
		rng:        rng,
		weights:    make([]float64, numArms),
		probs:      make([]float64, numArms),
		selections: make([]int, numArms),
		prevArm:    -1,
	}
	for i := range e.weights {
		e.weights[i] = 1
	}
	return e, nil
}

// Name implements Policy.
func (e *EXP3) Name() string { return "EXP3" }

// NumArms implements Policy.
func (e *EXP3) NumArms() int { return e.n }

// SelectArm implements Policy.
func (e *EXP3) SelectArm() int {
	if e.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: SelectArm called twice without Update")
	}
	total := 0.0
	for _, w := range e.weights {
		total += w
	}
	for i, w := range e.weights {
		e.probs[i] = (1-e.gamma)*w/total + e.gamma/float64(e.n)
	}
	sampler, err := numeric.NewWeightedSampler(e.probs)
	if err != nil {
		//lint:allow panicpolicy solver failure on by-construction-finite inputs is a programmer error; Policy has no error channel
		panic(fmt.Sprintf("bandit: exp3 sampler: %v", err))
	}
	arm := sampler.Sample(e.rng)
	e.currentArm = arm
	e.currentP = e.probs[arm]
	e.awaitingUpdate = true
	e.selections[arm]++
	if arm != e.prevArm {
		e.switches++
		e.prevArm = arm
	}
	return arm
}

// Update implements Policy. The loss is clamped into [0, lossScale] before
// the exponential-weight update.
func (e *EXP3) Update(loss float64) {
	if !e.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: Update called without SelectArm")
	}
	e.awaitingUpdate = false
	norm := numeric.Clamp(loss/e.lossScale, 0, 1)
	// Reward form: estimated gain of the played arm.
	gainEst := (1 - norm) / e.currentP
	e.weights[e.currentArm] *= math.Exp(e.gamma * gainEst / float64(e.n))
	// Keep weights bounded to avoid overflow on long horizons.
	const maxWeight = 1e150
	if e.weights[e.currentArm] > maxWeight {
		for i := range e.weights {
			e.weights[i] /= maxWeight
			if e.weights[i] < 1e-300 {
				e.weights[i] = 1e-300
			}
		}
	}
}

// Skip implements Skipper: the unserved slot leaves the weights untouched.
func (e *EXP3) Skip() {
	if !e.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update-or-Skip must alternate; the interface has no error channel for misuse
		panic("bandit: Skip called without SelectArm")
	}
	e.awaitingUpdate = false
}

// Switches returns arm changes so far (counting the first pick).
func (e *EXP3) Switches() int { return e.switches }

// Selections returns per-arm play counts (copy).
func (e *EXP3) Selections() []int {
	out := make([]int, len(e.selections))
	copy(out, e.selections)
	return out
}

// EpsilonGreedy plays the empirically best arm with probability 1-epsilon
// and explores uniformly otherwise — the simplest stochastic-bandit
// reference point.
type EpsilonGreedy struct {
	n       int
	epsilon float64
	rng     *rand.Rand

	means  []float64
	counts []int

	currentArm     int
	awaitingUpdate bool
}

var _ Policy = (*EpsilonGreedy)(nil)

// NewEpsilonGreedy creates the policy; epsilon in [0, 1].
func NewEpsilonGreedy(numArms int, epsilon float64, rng *rand.Rand) (*EpsilonGreedy, error) {
	if numArms <= 0 {
		return nil, fmt.Errorf("bandit: numArms must be positive, got %d", numArms)
	}
	if epsilon < 0 || epsilon > 1 {
		return nil, fmt.Errorf("bandit: epsilon must be in [0,1], got %g", epsilon)
	}
	return &EpsilonGreedy{
		n:       numArms,
		epsilon: epsilon,
		rng:     rng,
		means:   make([]float64, numArms),
		counts:  make([]int, numArms),
	}, nil
}

// Name implements Policy.
func (e *EpsilonGreedy) Name() string { return "EpsilonGreedy" }

// NumArms implements Policy.
func (e *EpsilonGreedy) NumArms() int { return e.n }

// SelectArm implements Policy.
func (e *EpsilonGreedy) SelectArm() int {
	if e.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: SelectArm called twice without Update")
	}
	arm := -1
	// Untried arms first.
	for i, c := range e.counts {
		if c == 0 {
			arm = i
			break
		}
	}
	if arm < 0 {
		if e.rng.Float64() < e.epsilon {
			arm = e.rng.Intn(e.n)
		} else {
			arm = numeric.ArgMin(e.means)
		}
	}
	e.currentArm = arm
	e.awaitingUpdate = true
	return arm
}

// Update implements Policy.
func (e *EpsilonGreedy) Update(loss float64) {
	if !e.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: Update called without SelectArm")
	}
	e.awaitingUpdate = false
	j := e.currentArm
	e.counts[j]++
	e.means[j] += (loss - e.means[j]) / float64(e.counts[j])
}

// Skip implements Skipper: the unserved slot leaves means and counts alone.
func (e *EpsilonGreedy) Skip() {
	if !e.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update-or-Skip must alternate; the interface has no error channel for misuse
		panic("bandit: Skip called without SelectArm")
	}
	e.awaitingUpdate = false
}
