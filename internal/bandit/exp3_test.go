package bandit

import (
	"math"
	"math/rand"
	"testing"
)

func TestEXP3ConstructorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := NewEXP3(0, 0.1, 1, rng); err == nil {
		t.Error("expected error for zero arms")
	}
	if _, err := NewEXP3(3, 0, 1, rng); err == nil {
		t.Error("expected error for gamma = 0")
	}
	if _, err := NewEXP3(3, 1.5, 1, rng); err == nil {
		t.Error("expected error for gamma > 1")
	}
	if _, err := NewEXP3(3, 0.1, 0, rng); err == nil {
		t.Error("expected error for zero loss scale")
	}
}

func TestEXP3ConvergesToBestArm(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	means := []float64{0.7, 0.2, 0.6, 0.8}
	e, err := NewEXP3(len(means), 0.07, 1.2, rng)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 30000
	_, _, pulls := runStochastic(t, e, means, 0.1, horizon, rng)
	frac := float64(pulls[1]) / horizon
	if frac < 0.55 {
		t.Errorf("best-arm fraction = %v (pulls=%v)", frac, pulls)
	}
	if got := e.Selections(); got[1] != pulls[1] {
		t.Error("selection accounting mismatch")
	}
}

func TestEXP3ExploresAllArms(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	e, err := NewEXP3(4, 0.2, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	runStochastic(t, e, []float64{0.1, 0.9, 0.9, 0.9}, 0.05, 5000, rng)
	for i, c := range e.Selections() {
		// gamma/n uniform mixing guarantees every arm gets ~gamma/n share.
		if c < 5000/4/20 {
			t.Errorf("arm %d starved: %d pulls", i, c)
		}
	}
}

func TestEXP3ProtocolEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	e, err := NewEXP3(2, 0.1, 1, rng)
	if err != nil {
		t.Fatal(err)
	}
	e.SelectArm()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double SelectArm must panic")
			}
		}()
		e.SelectArm()
	}()
	e.Update(0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Update without SelectArm must panic")
			}
		}()
		e.Update(0.5)
	}()
}

func TestEXP3WeightsStayFinite(t *testing.T) {
	// A long run with extreme losses must not overflow the weights.
	rng := rand.New(rand.NewSource(5))
	e, err := NewEXP3(3, 0.3, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000; i++ {
		arm := e.SelectArm()
		loss := 0.0
		if arm != 0 {
			loss = 100 // clamped to scale
		}
		e.Update(loss)
	}
	for i, w := range e.weights {
		if math.IsInf(w, 0) || math.IsNaN(w) || w <= 0 {
			t.Fatalf("weight[%d] = %v", i, w)
		}
	}
	if e.Switches() <= 0 {
		t.Error("switch counter never moved")
	}
}

func TestEpsilonGreedyConstructorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	if _, err := NewEpsilonGreedy(0, 0.1, rng); err == nil {
		t.Error("expected error for zero arms")
	}
	if _, err := NewEpsilonGreedy(3, -0.1, rng); err == nil {
		t.Error("expected error for negative epsilon")
	}
	if _, err := NewEpsilonGreedy(3, 1.1, rng); err == nil {
		t.Error("expected error for epsilon > 1")
	}
}

func TestEpsilonGreedyTriesAllArmsFirst(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	e, err := NewEpsilonGreedy(5, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 5; i++ {
		arm := e.SelectArm()
		if seen[arm] {
			t.Fatalf("arm %d repeated during initialization", arm)
		}
		seen[arm] = true
		e.Update(0.5)
	}
}

func TestEpsilonGreedyConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	means := []float64{0.9, 0.3, 0.7}
	e, err := NewEpsilonGreedy(len(means), 0.05, rng)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 20000
	_, _, pulls := runStochastic(t, e, means, 0.1, horizon, rng)
	if frac := float64(pulls[1]) / horizon; frac < 0.85 {
		t.Errorf("best-arm fraction = %v", frac)
	}
}

func TestEpsilonGreedyZeroEpsilonPureExploit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	e, err := NewEpsilonGreedy(3, 0, rng)
	if err != nil {
		t.Fatal(err)
	}
	// After initialization with deterministic losses, epsilon=0 always
	// plays the best arm.
	losses := []float64{0.9, 0.1, 0.5}
	for i := 0; i < 3; i++ {
		arm := e.SelectArm()
		e.Update(losses[arm])
	}
	for i := 0; i < 100; i++ {
		if arm := e.SelectArm(); arm != 1 {
			t.Fatalf("epsilon=0 played arm %d", arm)
		}
		e.Update(0.1)
	}
}

func TestEpsilonGreedyProtocolEnforced(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	e, err := NewEpsilonGreedy(2, 0.1, rng)
	if err != nil {
		t.Fatal(err)
	}
	e.SelectArm()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double SelectArm must panic")
			}
		}()
		e.SelectArm()
	}()
	e.Update(0.5)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Update without SelectArm must panic")
			}
		}()
		e.Update(0.5)
	}()
}
