package bandit

import (
	"fmt"
	"math"
)

// UCB2 is the paper's second switching-aware baseline (Auer, Cesa-Bianchi &
// Fischer 2002; applied with switching costs by Le, Szepesvari & Zheng
// 2014). Arms are played in epochs: when arm j enters its r-th epoch it is
// played for tau(r+1) - tau(r) consecutive slots with tau(r) =
// ceil((1+alpha)^r), which bounds the number of switches by O(log T).
//
// UCB2 assumes rewards in [0, 1]; losses are mapped to rewards via
// reward = 1 - loss/LossScale (clamped), so LossScale should upper-bound the
// per-slot loss.
type UCB2 struct {
	n         int
	alpha     float64
	lossScale float64

	means  []float64 // running mean reward per arm
	counts []int     // plays per arm
	epochs []int     // r_j: completed epochs per arm
	t      int       // total plays so far

	currentArm int
	remaining  int
	switches   int
	selections []int

	awaitingUpdate bool
}

var _ Policy = (*UCB2)(nil)

// NewUCB2 creates the UCB2 baseline. alpha in (0, 1) controls epoch growth
// (smaller alpha = longer epochs); lossScale > 0 normalizes losses.
func NewUCB2(numArms int, alpha, lossScale float64) (*UCB2, error) {
	if numArms <= 0 {
		return nil, fmt.Errorf("bandit: numArms must be positive, got %d", numArms)
	}
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("bandit: alpha must be in (0,1), got %g", alpha)
	}
	if lossScale <= 0 {
		return nil, fmt.Errorf("bandit: lossScale must be positive, got %g", lossScale)
	}
	return &UCB2{
		n:          numArms,
		alpha:      alpha,
		lossScale:  lossScale,
		means:      make([]float64, numArms),
		counts:     make([]int, numArms),
		epochs:     make([]int, numArms),
		selections: make([]int, numArms),
		currentArm: -1,
	}, nil
}

// Name implements Policy.
func (u *UCB2) Name() string { return "UCB2" }

// NumArms implements Policy.
func (u *UCB2) NumArms() int { return u.n }

// tau is the UCB2 epoch length function tau(r) = ceil((1+alpha)^r).
func (u *UCB2) tau(r int) int {
	return int(math.Ceil(math.Pow(1+u.alpha, float64(r))))
}

// bonus is the UCB2 exploration bonus a_{t,r}.
func (u *UCB2) bonus(r int) float64 {
	tr := float64(u.tau(r))
	t := math.Max(float64(u.t), 1)
	arg := math.E * t / tr
	if arg < math.E {
		arg = math.E
	}
	return math.Sqrt((1 + u.alpha) * math.Log(arg) / (2 * tr))
}

// SelectArm implements Policy.
func (u *UCB2) SelectArm() int {
	if u.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: SelectArm called twice without Update")
	}
	if u.remaining == 0 {
		u.startEpoch()
	}
	u.awaitingUpdate = true
	u.selections[u.currentArm]++
	return u.currentArm
}

// startEpoch picks the next arm. Each arm is tried once first; afterwards
// the arm with the highest mean reward + bonus wins and is played for
// tau(r+1) - tau(r) slots.
func (u *UCB2) startEpoch() {
	next := -1
	// Initialization phase: play every arm once.
	for j := 0; j < u.n; j++ {
		if u.counts[j] == 0 {
			next = j
			break
		}
	}
	if next < 0 {
		bestVal := math.Inf(-1)
		for j := 0; j < u.n; j++ {
			v := u.means[j] + u.bonus(u.epochs[j])
			if v > bestVal {
				bestVal, next = v, j
			}
		}
	}
	if next != u.currentArm {
		u.switches++
	}
	u.currentArm = next
	if u.counts[next] == 0 {
		u.remaining = 1
	} else {
		r := u.epochs[next]
		u.remaining = u.tau(r+1) - u.tau(r)
		if u.remaining < 1 {
			u.remaining = 1
		}
		u.epochs[next] = r + 1
	}
}

// Update implements Policy.
func (u *UCB2) Update(loss float64) {
	if !u.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update must alternate; the interface has no error channel for misuse
		panic("bandit: Update called without SelectArm")
	}
	u.awaitingUpdate = false
	reward := 1 - loss/u.lossScale
	if reward < 0 {
		reward = 0
	}
	if reward > 1 {
		reward = 1
	}
	j := u.currentArm
	u.counts[j]++
	u.t++
	u.means[j] += (reward - u.means[j]) / float64(u.counts[j])
	u.remaining--
}

// Skip implements Skipper: the unserved slot still consumes one slot of the
// current epoch (epochs track real time) but is not counted as a play, so
// the arm's mean reward reflects only served slots.
func (u *UCB2) Skip() {
	if !u.awaitingUpdate {
		//lint:allow panicpolicy Policy contract: SelectArm/Update-or-Skip must alternate; the interface has no error channel for misuse
		panic("bandit: Skip called without SelectArm")
	}
	u.awaitingUpdate = false
	u.remaining--
}

// Switches returns the number of arm changes (including the first pick).
func (u *UCB2) Switches() int { return u.switches }

// Selections returns per-arm slot counts (copy).
func (u *UCB2) Selections() []int {
	out := make([]int, len(u.selections))
	copy(out, u.selections)
	return out
}
