// Package bandit implements the paper's model-selection subproblem P1.
//
// The centerpiece is Algorithm 1 — a switching-aware bandit that combines
// Tsallis-INF (online mirror descent with the alpha=1/2 Tsallis entropy
// regularizer) with a block schedule of increasing length: the arm (model) is
// resampled only at block boundaries, which bounds the number of model
// switches by the number of blocks and yields the paper's
// O((uN)^{2/3} T^{1/3} + u^2 + ln T) regret-plus-switching bound (Theorem 1).
//
// The package also carries the paper's comparison baselines: unblocked
// Tsallis-INF, UCB2 (which bounds switches via its own epoch schedule),
// Random, and energy-Greedy, all behind one Policy interface so the
// simulator can mix and match combinations exactly as the evaluation does.
package bandit

import (
	"fmt"
	"math/rand"
)

// Policy is a per-edge sequential model-selection strategy. Each time slot
// the simulator calls SelectArm exactly once and then Update exactly once
// with the observed loss sample for the selected arm (the paper's
// L_{i,n}^t + v_{i,n}).
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// NumArms returns the number of models the policy chooses between.
	NumArms() int
	// SelectArm returns the arm to play this slot.
	SelectArm() int
	// Update feeds back the loss observed for the arm returned by the
	// immediately preceding SelectArm call.
	Update(loss float64)
}

// Skipper is implemented by policies that can acknowledge a selected but
// never-served slot (an edge that was down produced no loss sample). Skip
// replaces the Update of the immediately preceding SelectArm: the slot
// contributes nothing to the policy's loss estimates, so importance-weighted
// estimators stay unbiased over the slots actually served, while internal
// block/epoch schedules still advance with real time.
type Skipper interface {
	// Skip acknowledges the preceding SelectArm without feeding back a loss.
	Skip()
}

// Random selects a uniformly random model each slot (paper baseline
// "Random").
type Random struct {
	n   int
	rng *rand.Rand
}

var _ Policy = (*Random)(nil)

// NewRandom creates the Random baseline.
func NewRandom(numArms int, rng *rand.Rand) (*Random, error) {
	if numArms <= 0 {
		return nil, fmt.Errorf("bandit: numArms must be positive, got %d", numArms)
	}
	return &Random{n: numArms, rng: rng}, nil
}

// Name implements Policy.
func (r *Random) Name() string { return "Random" }

// NumArms implements Policy.
func (r *Random) NumArms() int { return r.n }

// SelectArm implements Policy.
func (r *Random) SelectArm() int { return r.rng.Intn(r.n) }

// Update implements Policy.
func (r *Random) Update(float64) {}

// Skip implements Skipper; Random keeps no loss state.
func (r *Random) Skip() {}

// Greedy always selects the model with the lowest score (the paper's Greedy
// picks the model with the lowest energy consumption). It never explores.
type Greedy struct {
	best int
	n    int
}

var _ Policy = (*Greedy)(nil)

// NewGreedy creates the Greedy baseline over a static score vector
// (typically per-sample energy phi_n).
func NewGreedy(scores []float64) (*Greedy, error) {
	if len(scores) == 0 {
		return nil, fmt.Errorf("bandit: empty score vector")
	}
	best := 0
	for i, s := range scores {
		if s < scores[best] {
			best = i
		}
	}
	return &Greedy{best: best, n: len(scores)}, nil
}

// Name implements Policy.
func (g *Greedy) Name() string { return "Greedy" }

// NumArms implements Policy.
func (g *Greedy) NumArms() int { return g.n }

// SelectArm implements Policy.
func (g *Greedy) SelectArm() int { return g.best }

// Update implements Policy.
func (g *Greedy) Update(float64) {}

// Skip implements Skipper; Greedy keeps no loss state.
func (g *Greedy) Skip() {}

// Fixed always plays one arm; it implements the hindsight-best-arm
// comparator used for regret accounting and the Offline scheme.
type Fixed struct {
	arm int
	n   int
}

var _ Policy = (*Fixed)(nil)

// NewFixed pins the policy to one arm out of numArms.
func NewFixed(arm, numArms int) (*Fixed, error) {
	if numArms <= 0 || arm < 0 || arm >= numArms {
		return nil, fmt.Errorf("bandit: arm %d out of range [0, %d)", arm, numArms)
	}
	return &Fixed{arm: arm, n: numArms}, nil
}

// Name implements Policy.
func (f *Fixed) Name() string { return "Fixed" }

// NumArms implements Policy.
func (f *Fixed) NumArms() int { return f.n }

// SelectArm implements Policy.
func (f *Fixed) SelectArm() int { return f.arm }

// Update implements Policy.
func (f *Fixed) Update(float64) {}

// Skip implements Skipper; Fixed keeps no loss state.
func (f *Fixed) Skip() {}
