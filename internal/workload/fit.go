package workload

import (
	"fmt"
	"math"
)

// FitProfile estimates a diurnal Profile and per-edge peak scales from an
// observed workload trace (workload[t][i] = M_i^t), so that real traces
// imported via internal/trace can be extended or re-synthesized with the
// generator. The estimator folds the trace onto a single day, locates the
// two largest intensity peaks (AM before noon, PM after), fits the floor
// from the lowest decile, and the peak width from the half-maximum span.
func FitProfile(workload [][]int) (Profile, []float64, error) {
	if len(workload) == 0 || len(workload[0]) == 0 {
		return Profile{}, nil, fmt.Errorf("workload: empty trace")
	}
	edges := len(workload[0])

	// Per-edge totals give the relative scales.
	scales := make([]float64, edges)
	for _, row := range workload {
		if len(row) != edges {
			return Profile{}, nil, fmt.Errorf("workload: ragged trace")
		}
		for i, m := range row {
			if m < 0 {
				return Profile{}, nil, fmt.Errorf("workload: negative count")
			}
			scales[i] += float64(m)
		}
	}

	// Fold onto a day: mean total demand per within-day slot.
	day := make([]float64, SlotsPerDay)
	dayCount := make([]int, SlotsPerDay)
	for t, row := range workload {
		slot := t % SlotsPerDay
		total := 0.0
		for _, m := range row {
			total += float64(m)
		}
		day[slot] += total
		dayCount[slot]++
	}
	maxV := 0.0
	for s := range day {
		if dayCount[s] > 0 {
			day[s] /= float64(dayCount[s])
		}
		if day[s] > maxV {
			maxV = day[s]
		}
	}
	if maxV <= 0 {
		return Profile{}, nil, fmt.Errorf("workload: trace has no demand")
	}
	for s := range day {
		day[s] /= maxV // normalized intensity in [0,1]
	}

	// Peaks: the largest intensity before and after midday.
	noon := SlotsPerDay / 2
	am, pm := argmaxRange(day, 0, noon), argmaxRange(day, noon, SlotsPerDay)

	// Floor: mean of the lowest-decile slots.
	base := lowestDecileMean(day)

	// Width: half-maximum span around the AM peak.
	width := halfMaxWidth(day, am, base)

	p := Profile{
		Base:      base,
		AMPeak:    am,
		PMPeak:    pm,
		PeakWidth: width,
		DayJitter: 0.1,
	}

	// Convert per-edge totals into peak scales: total ~= scale * sum of
	// intensities over the trace.
	intensitySum := 0.0
	for t := range workload {
		intensitySum += day[t%SlotsPerDay]
	}
	for i := range scales {
		if intensitySum > 0 {
			scales[i] /= intensitySum
		}
	}
	return p, scales, nil
}

// argmaxRange returns the index of the maximum of xs in [lo, hi).
func argmaxRange(xs []float64, lo, hi int) int {
	best := lo
	for i := lo; i < hi; i++ {
		if xs[i] > xs[best] {
			best = i
		}
	}
	return best
}

// lowestDecileMean averages the smallest 10% of values.
func lowestDecileMean(xs []float64) float64 {
	n := len(xs) / 10
	if n < 1 {
		n = 1
	}
	// Selection by repeated min without sorting the caller's slice.
	tmp := make([]float64, len(xs))
	copy(tmp, xs)
	sum := 0.0
	for k := 0; k < n; k++ {
		mi := 0
		for i, v := range tmp {
			if v < tmp[mi] {
				mi = i
			}
		}
		sum += tmp[mi]
		tmp[mi] = math.Inf(1)
	}
	return sum / float64(n)
}

// halfMaxWidth measures the width (in slots) where intensity stays above
// halfway between the floor and the peak, converted to a Gaussian sigma.
func halfMaxWidth(day []float64, peak int, base float64) float64 {
	half := base + (day[peak]-base)/2
	lo, hi := peak, peak
	for lo > 0 && day[lo-1] >= half {
		lo--
	}
	for hi < len(day)-1 && day[hi+1] >= half {
		hi++
	}
	// FWHM of a Gaussian = 2*sqrt(2 ln 2) * sigma ~= 2.355 sigma.
	fwhm := float64(hi - lo + 1)
	sigma := fwhm / 2.355
	if sigma < 1 {
		sigma = 1
	}
	return sigma
}
