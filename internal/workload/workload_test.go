package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func newGen(t *testing.T, edges int, seed int64) *Generator {
	t.Helper()
	g, err := NewGenerator(Config{Edges: edges, MeanPeak: 100, Spread: 5}, rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	return g
}

func TestNewGeneratorErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero edges", Config{Edges: 0, MeanPeak: 10, Spread: 2}},
		{"zero peak", Config{Edges: 3, MeanPeak: 0, Spread: 2}},
		{"spread below one", Config{Edges: 3, MeanPeak: 10, Spread: 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewGenerator(tt.cfg, rng); err == nil {
				t.Error("expected error")
			}
		})
	}
}

func TestIntensityShape(t *testing.T) {
	g := newGen(t, 1, 2)
	p := DefaultProfile()
	// Peaks are local maxima and above the floor.
	am := g.Intensity(p.AMPeak)
	pm := g.Intensity(p.PMPeak)
	night := g.Intensity(0)
	if am < 0.95 || pm < 0.95 {
		t.Errorf("peak intensities = %v, %v, want near 1", am, pm)
	}
	if night > 0.4 {
		t.Errorf("night intensity = %v, want low", night)
	}
	for slot := 0; slot < 2*SlotsPerDay; slot++ {
		v := g.Intensity(slot)
		if v <= 0 || v > 1 {
			t.Fatalf("intensity(%d) = %v out of (0,1]", slot, v)
		}
	}
	// Second day repeats the first (deterministic diurnal component).
	for slot := 0; slot < SlotsPerDay; slot++ {
		if g.Intensity(slot) != g.Intensity(slot+SlotsPerDay) {
			t.Fatal("intensity not periodic over a day")
		}
	}
}

func TestDrawCountsNonNegative(t *testing.T) {
	g := newGen(t, 10, 3)
	for slot := 0; slot < 160; slot++ {
		counts := g.Draw(slot)
		if len(counts) != 10 {
			t.Fatalf("len = %d", len(counts))
		}
		for _, c := range counts {
			if c < 0 {
				t.Fatal("negative arrival count")
			}
		}
	}
}

func TestPeakBusierThanNight(t *testing.T) {
	g := newGen(t, 5, 4)
	p := DefaultProfile()
	peakSum, nightSum := 0, 0
	for rep := 0; rep < 50; rep++ {
		for _, c := range g.Draw(p.AMPeak) {
			peakSum += c
		}
		for _, c := range g.Draw(0) {
			nightSum += c
		}
	}
	if peakSum <= nightSum*2 {
		t.Errorf("peak total %d not clearly above night total %d", peakSum, nightSum)
	}
}

func TestSeriesDimensions(t *testing.T) {
	g := newGen(t, 7, 5)
	s := g.Series(160)
	if len(s) != 160 {
		t.Fatalf("series length %d", len(s))
	}
	for _, row := range s {
		if len(row) != 7 {
			t.Fatalf("row length %d", len(row))
		}
	}
}

func TestScalesSpread(t *testing.T) {
	g, err := NewGenerator(Config{Edges: 200, MeanPeak: 100, Spread: 9}, rand.New(rand.NewSource(6)))
	if err != nil {
		t.Fatal(err)
	}
	scales := g.Scales()
	lo, hi := scales[0], scales[0]
	for _, s := range scales {
		lo = math.Min(lo, s)
		hi = math.Max(hi, s)
	}
	if lo < 100/3.01 || hi > 100*3.01 {
		t.Errorf("scales outside log-uniform band: [%v, %v]", lo, hi)
	}
	if hi/lo < 2 {
		t.Errorf("spread too tight: [%v, %v]", lo, hi)
	}
	// Scales() must return a copy.
	scales[0] = -1
	if g.Scales()[0] == -1 {
		t.Error("Scales leaked internal slice")
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	g1 := newGen(t, 4, 7)
	g2 := newGen(t, 4, 7)
	for slot := 0; slot < 20; slot++ {
		a, b := g1.Draw(slot), g2.Draw(slot)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("same seed produced different draws")
			}
		}
	}
}

func TestPoissonMean(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, mean := range []float64{0.5, 3, 20, 120} {
		sum := 0
		const n = 20000
		for i := 0; i < n; i++ {
			sum += poisson(rng, mean)
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.05+0.1 {
			t.Errorf("poisson(%v) empirical mean %v", mean, got)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Error("poisson(0) != 0")
	}
	if poisson(rng, -5) != 0 {
		t.Error("poisson(negative) != 0")
	}
}

// Property: intensity is bounded and arrival counts scale with the per-edge
// scale ordering on average.
func TestIntensityBoundedProperty(t *testing.T) {
	g := newGen(t, 1, 9)
	prop := func(slot uint16) bool {
		v := g.Intensity(int(slot))
		return v > 0 && v <= 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
