// Package workload generates the per-edge inference workload M_i^t, standing
// in for the London Underground 15-minute passenger counts the paper uses.
//
// The generator produces a two-day, 15-minute-slot profile with the
// signature double peak of commuter traffic (AM and PM rush hours), a
// per-edge scale drawn from a heavy-ish tailed distribution (stations differ
// by an order of magnitude), day-to-day variation, and Poisson arrival noise.
// From the algorithms' perspective M_i is just a stationary stochastic
// arrival count per slot, which is all the paper assumes (its Appendix A
// shows the arrival count cancels from the loss expectation).
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// SlotsPerDay is the number of 15-minute slots in a day.
const SlotsPerDay = 96

// Profile describes the diurnal shape shared by all edges.
type Profile struct {
	// Base is the off-peak demand floor as a fraction of peak.
	Base float64
	// AMPeak and PMPeak are the slot indices (within a day) of the two
	// rush-hour maxima.
	AMPeak, PMPeak int
	// PeakWidth is the Gaussian width (in slots) of each peak.
	PeakWidth float64
	// DayJitter scales multiplicative day-to-day variation.
	DayJitter float64
}

// DefaultProfile mimics London Underground traffic: peaks around 08:30
// (slot 34) and 18:00 (slot 72), an off-peak floor of 15 % of peak, and
// moderate day-to-day variation.
func DefaultProfile() Profile {
	return Profile{
		Base:      0.15,
		AMPeak:    34,
		PMPeak:    72,
		PeakWidth: 8,
		DayJitter: 0.1,
	}
}

// Generator draws workloads for a set of edges over a horizon.
type Generator struct {
	profile Profile
	scales  []float64 // per-edge mean peak demand
	rng     *rand.Rand
}

// Config parameterizes a Generator.
type Config struct {
	Edges int
	// MeanPeak is the average peak samples-per-slot across edges.
	MeanPeak float64
	// Spread >= 1 is the ratio between the busiest and quietest edge.
	Spread  float64
	Profile Profile
}

// NewGenerator builds a workload generator; per-edge scales are drawn
// log-uniformly over [MeanPeak/sqrt(Spread), MeanPeak*sqrt(Spread)].
func NewGenerator(cfg Config, rng *rand.Rand) (*Generator, error) {
	if cfg.Edges <= 0 {
		return nil, fmt.Errorf("workload: need at least one edge, got %d", cfg.Edges)
	}
	if cfg.MeanPeak <= 0 {
		return nil, fmt.Errorf("workload: MeanPeak must be positive, got %g", cfg.MeanPeak)
	}
	if cfg.Spread < 1 {
		return nil, fmt.Errorf("workload: Spread must be >= 1, got %g", cfg.Spread)
	}
	if cfg.Profile == (Profile{}) {
		cfg.Profile = DefaultProfile()
	}
	g := &Generator{profile: cfg.Profile, rng: rng}
	g.scales = make([]float64, cfg.Edges)
	logSpread := math.Log(cfg.Spread)
	for i := range g.scales {
		// Log-uniform in [mean/sqrt(S), mean*sqrt(S)].
		u := rng.Float64() - 0.5
		g.scales[i] = cfg.MeanPeak * math.Exp(u*logSpread)
	}
	return g, nil
}

// Scales returns a copy of the per-edge peak scales.
func (g *Generator) Scales() []float64 {
	out := make([]float64, len(g.scales))
	copy(out, g.scales)
	return out
}

// Intensity returns the deterministic diurnal intensity (fraction of peak,
// in (0, 1]) for a slot index.
func (g *Generator) Intensity(slot int) float64 {
	p := g.profile
	day := slot % SlotsPerDay
	peak := func(center int) float64 {
		d := float64(day - center)
		return math.Exp(-d * d / (2 * p.PeakWidth * p.PeakWidth))
	}
	v := p.Base + (1-p.Base)*math.Max(peak(p.AMPeak), peak(p.PMPeak))
	if v > 1 {
		v = 1
	}
	return v
}

// Draw returns the arrival counts M_i^t for every edge at one slot: a
// Poisson draw around scale_i * intensity(t) * dayFactor.
func (g *Generator) Draw(slot int) []int {
	intensity := g.Intensity(slot)
	dayFactor := 1 + g.profile.DayJitter*math.Sin(2*math.Pi*float64(slot)/(SlotsPerDay*7)+g.rng.NormFloat64()*0.05)
	out := make([]int, len(g.scales))
	for i, s := range g.scales {
		mean := s * intensity * dayFactor
		if mean < 0 {
			mean = 0
		}
		out[i] = poisson(g.rng, mean)
	}
	return out
}

// Series draws the full horizon for all edges: result[t][i] = M_i^t.
func (g *Generator) Series(horizon int) [][]int {
	out := make([][]int, horizon)
	for t := range out {
		out[t] = g.Draw(t)
	}
	return out
}

// poisson draws from Poisson(mean) using Knuth's method for small means and
// a normal approximation for large ones.
func poisson(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 50 {
		v := mean + math.Sqrt(mean)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
