package workload

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitProfileRecoversGenerator(t *testing.T) {
	// Generate a long trace from a known profile, fit, and compare.
	truth := Profile{Base: 0.2, AMPeak: 30, PMPeak: 70, PeakWidth: 7, DayJitter: 0.05}
	gen, err := NewGenerator(Config{
		Edges: 6, MeanPeak: 300, Spread: 4, Profile: truth,
	}, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	trace := gen.Series(SlotsPerDay * 10)

	fitted, scales, err := FitProfile(trace)
	if err != nil {
		t.Fatalf("FitProfile: %v", err)
	}
	if d := fitted.AMPeak - truth.AMPeak; d < -3 || d > 3 {
		t.Errorf("AMPeak = %d, want ~%d", fitted.AMPeak, truth.AMPeak)
	}
	if d := fitted.PMPeak - truth.PMPeak; d < -3 || d > 3 {
		t.Errorf("PMPeak = %d, want ~%d", fitted.PMPeak, truth.PMPeak)
	}
	if math.Abs(fitted.Base-truth.Base) > 0.1 {
		t.Errorf("Base = %v, want ~%v", fitted.Base, truth.Base)
	}
	if math.Abs(fitted.PeakWidth-truth.PeakWidth) > truth.PeakWidth {
		t.Errorf("PeakWidth = %v, want ~%v", fitted.PeakWidth, truth.PeakWidth)
	}
	// Fitted scales preserve the ordering of the true per-edge scales.
	trueScales := gen.Scales()
	for i := 0; i < len(scales); i++ {
		for j := i + 1; j < len(scales); j++ {
			if (trueScales[i] < trueScales[j]) != (scales[i] < scales[j]) {
				t.Errorf("scale ordering broken between edges %d and %d", i, j)
			}
		}
	}
}

func TestFitProfileRoundTripBehavior(t *testing.T) {
	// A generator built from the fitted profile must reproduce the trace's
	// gross statistics: peak-to-floor ratio within a factor of two.
	gen, err := NewGenerator(Config{Edges: 3, MeanPeak: 200, Spread: 2}, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	trace := gen.Series(SlotsPerDay * 6)
	fitted, scales, err := FitProfile(trace)
	if err != nil {
		t.Fatal(err)
	}
	meanScale := 0.0
	for _, s := range scales {
		meanScale += s
	}
	meanScale /= float64(len(scales))
	refit, err := NewGenerator(Config{
		Edges: 3, MeanPeak: meanScale, Spread: 2, Profile: fitted,
	}, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	ratio := func(g *Generator) float64 {
		peak := g.Intensity(fitted.AMPeak)
		floor := g.Intensity(0)
		return peak / floor
	}
	origRatio := gen.Intensity(DefaultProfile().AMPeak) / gen.Intensity(0)
	if r := ratio(refit); r < origRatio/2 || r > origRatio*2 {
		t.Errorf("peak/floor ratio %v too far from original %v", r, origRatio)
	}
}

func TestFitProfileErrors(t *testing.T) {
	if _, _, err := FitProfile(nil); err == nil {
		t.Error("expected error for empty trace")
	}
	if _, _, err := FitProfile([][]int{{}}); err == nil {
		t.Error("expected error for zero edges")
	}
	if _, _, err := FitProfile([][]int{{1, 2}, {3}}); err == nil {
		t.Error("expected error for ragged trace")
	}
	if _, _, err := FitProfile([][]int{{1, -2}}); err == nil {
		t.Error("expected error for negative counts")
	}
	if _, _, err := FitProfile([][]int{{0, 0}, {0, 0}}); err == nil {
		t.Error("expected error for all-zero trace")
	}
}
