module github.com/carbonedge/carbonedge

go 1.22
