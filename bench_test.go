// Benchmarks regenerating every figure of the paper's evaluation section
// (Figs. 3-14) plus micro-benchmarks of the two online algorithms' per-slot
// steps. Each BenchmarkFigN times one full regeneration of that figure's
// data at reduced repetition counts; run cmd/benchgen for the full tables.
package carbonedge_test

import (
	"math/rand"
	"testing"

	"github.com/carbonedge/carbonedge/internal/bandit"
	"github.com/carbonedge/carbonedge/internal/dataset"
	"github.com/carbonedge/carbonedge/internal/figures"
	"github.com/carbonedge/carbonedge/internal/models"
	"github.com/carbonedge/carbonedge/internal/numeric"
	"github.com/carbonedge/carbonedge/internal/sim"
	"github.com/carbonedge/carbonedge/internal/trading"
)

// benchOpts keeps figure benchmarks quick while preserving their structure.
func benchOpts() figures.Options {
	return figures.Options{Runs: 1, Seed: 1, Edges: 5, Horizon: 80}
}

func benchFigure(b *testing.B, gen func(figures.Options) (*figures.Figure, error), o figures.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fig, err := gen(o)
		if err != nil {
			b.Fatal(err)
		}
		if len(fig.Series) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFig3CumulativeCost(b *testing.B) {
	benchFigure(b, figures.Fig3CumulativeCost, benchOpts())
}

func BenchmarkFig4TotalCostVsEdges(b *testing.B) {
	benchFigure(b, figures.Fig4CostVsEdges, benchOpts())
}

func BenchmarkFig5SwitchWeight(b *testing.B) {
	benchFigure(b, figures.Fig5SwitchWeight, benchOpts())
}

func BenchmarkFig6EmissionRate(b *testing.B) {
	benchFigure(b, figures.Fig6EmissionRate, benchOpts())
}

func BenchmarkFig7CarbonCap(b *testing.B) {
	benchFigure(b, figures.Fig7CarbonCap, benchOpts())
}

func BenchmarkFig8SelectionHistogram(b *testing.B) {
	benchFigure(b, figures.Fig8SelectionHistogram, benchOpts())
}

func BenchmarkFig9TradingVolume(b *testing.B) {
	benchFigure(b, figures.Fig9TradingVolume, benchOpts())
}

func BenchmarkFig10Regret(b *testing.B) {
	benchFigure(b, figures.Fig10Regret, benchOpts())
}

func BenchmarkFig11Fit(b *testing.B) {
	benchFigure(b, figures.Fig11Fit, benchOpts())
}

// The accuracy figures train real networks; a tiny zoo keeps the benchmark
// honest about the full pipeline without minute-scale iterations.
func benchAccuracyOpts() figures.Options {
	return figures.Options{Runs: 1, Seed: 1, Edges: 2, Horizon: 40}
}

func BenchmarkFig12AccuracyMNIST(b *testing.B) {
	zooCfg := models.DefaultTrainedZooConfig(dataset.MNISTLike)
	zooCfg.TrainN, zooCfg.TestN, zooCfg.Epochs = 200, 200, 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchAccuracyPipeline(zooCfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13AccuracyCIFAR(b *testing.B) {
	zooCfg := models.DefaultTrainedZooConfig(dataset.CIFARLike)
	zooCfg.TrainN, zooCfg.TestN, zooCfg.Epochs = 150, 150, 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := benchAccuracyPipeline(zooCfg); err != nil {
			b.Fatal(err)
		}
	}
}

// benchAccuracyPipeline runs the zoo-train + stream + Ours pipeline once.
func benchAccuracyPipeline(zooCfg models.TrainedZooConfig) error {
	zoo, err := models.NewTrainedZoo(zooCfg, numeric.SplitRNG(1, "bench-zoo"))
	if err != nil {
		return err
	}
	cfg := sim.DefaultConfig(2)
	cfg.Horizon = 40
	s, err := sim.NewScenario(cfg, zoo)
	if err != nil {
		return err
	}
	_, err = sim.Run(s, "Ours", sim.PolicyOurs, sim.TraderOurs)
	return err
}

func BenchmarkFig14AlgRuntime(b *testing.B) {
	benchFigure(b, figures.Fig14AlgRuntime, figures.Options{Runs: 1, Seed: 1, Horizon: 40})
}

// --- Ablation benchmarks (design-choice studies from DESIGN.md). ---

func BenchmarkAblationBlocking(b *testing.B) {
	benchFigure(b, figures.AblationBlocking, benchOpts())
}

func BenchmarkAblationStepSizes(b *testing.B) {
	benchFigure(b, figures.AblationStepSizes, benchOpts())
}

func BenchmarkAblationPricePrediction(b *testing.B) {
	benchFigure(b, figures.AblationPricePrediction, benchOpts())
}

// --- Micro-benchmarks: the per-slot cost of each algorithm. ---

// BenchmarkAlgorithm1Slot measures one SelectArm+Update cycle of the
// switching-aware bandit (the per-edge per-slot work of Algorithm 1).
func BenchmarkAlgorithm1Slot(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	p, err := bandit.NewBlockedTsallisINF(6, 1.2, rng)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		arm := p.SelectArm()
		p.Update(0.3 + 0.1*float64(arm))
	}
}

// BenchmarkAlgorithm2Slot measures one Decide+Observe cycle of the online
// primal-dual trader (the per-slot work of Algorithm 2).
func BenchmarkAlgorithm2Slot(b *testing.B) {
	cfg := trading.DefaultPrimalDualConfig(3, 160)
	tr, err := trading.NewPrimalDual(cfg)
	if err != nil {
		b.Fatal(err)
	}
	q := trading.Quote{Buy: 8, Sell: 7.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := tr.Decide(i, q)
		tr.Observe(i, 0.02, q, d)
	}
}

// BenchmarkFullScenarioRun measures one complete 10-edge, 160-slot run of
// the full system (Algorithm 1 + Algorithm 2 + substrates).
func BenchmarkFullScenarioRun(b *testing.B) {
	zoo, err := models.DefaultSurrogateZoo(numeric.SplitRNG(1, "zoo"))
	if err != nil {
		b.Fatal(err)
	}
	s, err := sim.NewScenario(sim.DefaultConfig(10), zoo)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(s, "Ours", sim.PolicyOurs, sim.TraderOurs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNNForward measures one forward pass of the largest MNIST-family
// network, the unit of inference work behind the per-sample energy numbers.
func BenchmarkNNForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds, err := dataset.Generate(dataset.MNISTLike, 2, 2, rng)
	if err != nil {
		b.Fatal(err)
	}
	zooCfg := models.DefaultTrainedZooConfig(dataset.MNISTLike)
	zooCfg.TrainN, zooCfg.TestN, zooCfg.Epochs = 50, 50, 1
	zoo, err := models.NewTrainedZoo(zooCfg, rng)
	if err != nil {
		b.Fatal(err)
	}
	net := zoo.Network(1) // cnn-l
	x := ds.Test[0].X
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(x)
	}
}
